package attack

import (
	"math"
	"testing"
	"testing/quick"

	"rcoal/internal/aes"
	"rcoal/internal/core"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/rng"
)

func randomLines(seed uint64, n int) []kernels.Line {
	return kernels.RandomPlaintext(rng.New(seed), n)
}

func TestNewRejectsInvalidPolicy(t *testing.T) {
	if _, err := New(mechanism.FSS(3), 1); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestEstimateSampleMatchesAlgorithm1(t *testing.T) {
	// The generic bitmask estimator with an FSS plan must agree with
	// the paper's literal Algorithm 1 on single-warp inputs, for every
	// (num-subwarp, guess) pair, every key-byte position, and random
	// ciphertext. The tabulated row estimator behind RecoverByte must
	// agree with both.
	baseline := Baseline(0)
	tab := baseline.nibbleTable()
	for _, seed := range []uint64{1, 7} {
		lines := randomLines(seed, 32)
		for _, m := range []int{1, 2, 4, 8, 16, 32} {
			plan := core.FSS(m).NewPlan(rng.New(1))
			for j := 0; j < KeyBytes; j++ {
				for guess := 0; guess < 256; guess++ {
					a := EstimateSample(plan, lines, j, byte(guess))
					b := Algorithm1(lines, j, byte(guess), m)
					if a != b {
						t.Fatalf("seed=%d M=%d j=%d guess=%d: EstimateSample %d != Algorithm1 %d",
							seed, m, j, guess, a, b)
					}
					if c := estimateSampleRow(plan, lines, j, &tab[guess]); c != b {
						t.Fatalf("seed=%d M=%d j=%d guess=%d: estimateSampleRow %d != Algorithm1 %d",
							seed, m, j, guess, c, b)
					}
				}
			}
		}
	}
}

func TestEstimateSampleBounds(t *testing.T) {
	f := func(seed uint64, jRaw, guess uint8, mIdx uint8) bool {
		ms := []int{1, 2, 4, 8, 16, 32}
		m := ms[int(mIdx)%len(ms)]
		lines := randomLines(seed, 32)
		plan := core.FSSRTS(m).NewPlan(rng.New(seed))
		j := int(jRaw) % 16
		got := EstimateSample(plan, lines, j, byte(guess))
		// At least one access per non-empty subwarp, at most one per
		// thread.
		return got >= m && got <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEstimateSampleMultiWarp(t *testing.T) {
	// Two warps of identical lines double the single-warp estimate.
	lines := randomLines(2, 32)
	double := append(append([]kernels.Line{}, lines...), lines...)
	plan := core.FSS(4).NewPlan(rng.New(3))
	one := EstimateSample(plan, lines, 0, 0xAB)
	two := EstimateSample(plan, double, 0, 0xAB)
	if two != 2*one {
		t.Errorf("multi-warp: %d, want %d", two, 2*one)
	}
}

func TestEstimateSamplePanics(t *testing.T) {
	plan := core.Baseline().NewPlan(rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("bad byte index did not panic")
		}
	}()
	EstimateSample(plan, randomLines(1, 32), 16, 0)
}

func TestAlgorithm1Worked(t *testing.T) {
	// Hand construction: choose ciphertext bytes so that for guess 0
	// the indices are the S-box outputs' inverses... simpler: craft
	// lines whose byte 0 all equal. Then all threads share one block:
	// 1 access per subwarp group.
	var lines []kernels.Line
	for i := 0; i < 32; i++ {
		var l kernels.Line
		l[0] = 0x5c
		lines = append(lines, l)
	}
	for _, m := range []int{1, 2, 4, 8} {
		if got := Algorithm1(lines, 0, 0x00, m); got != m {
			t.Errorf("uniform lines, M=%d: %d accesses, want %d", m, got, m)
		}
	}
}

func TestAlgorithm1PanicsOnBadSplit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-dividing num-subwarp did not panic")
		}
	}()
	Algorithm1(randomLines(1, 32), 0, 0, 5)
}

func TestAttackerPlanStableAcrossCalls(t *testing.T) {
	a, err := New(mechanism.RSSRTS(4), 7)
	if err != nil {
		t.Fatal(err)
	}
	cts := [][]kernels.Line{randomLines(1, 32), randomLines(2, 32)}
	u1 := a.EstimationVector(cts, 0, 10)
	u2 := a.EstimationVector(cts, 0, 10)
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatal("estimation vector unstable across calls")
		}
	}
}

func TestRecoverByteValidation(t *testing.T) {
	a := Baseline(1)
	cts := [][]kernels.Line{randomLines(1, 32)}
	if _, err := a.RecoverByte(cts, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := a.RecoverByte(cts, []float64{1}, 0); err == nil {
		t.Error("single sample accepted")
	}
}

func TestByteResultRank(t *testing.T) {
	br := &ByteResult{}
	for m := 0; m < 256; m++ {
		br.Correlations[m] = float64(m) / 256
	}
	if br.Rank(255) != 0 {
		t.Errorf("Rank(best) = %d, want 0", br.Rank(255))
	}
	if br.Rank(0) != 255 {
		t.Errorf("Rank(worst) = %d, want 255", br.Rank(0))
	}
}

func TestKeyResultScoring(t *testing.T) {
	kr := &KeyResult{}
	var trueKey [16]byte
	for j := 0; j < 16; j++ {
		trueKey[j] = byte(j)
		br := &ByteResult{}
		br.Correlations[j] = 0.5 // correct byte's correlation
		kr.Bytes[j] = br
		if j < 4 {
			kr.Key[j] = byte(j) // 4 correct
		} else {
			kr.Key[j] = byte(j + 1)
		}
	}
	if got := kr.CorrectCount(trueKey); got != 4 {
		t.Errorf("CorrectCount = %d, want 4", got)
	}
	if got := kr.AvgCorrectCorrelation(trueKey); got != 0.5 {
		t.Errorf("AvgCorrectCorrelation = %v, want 0.5", got)
	}
}

func TestAttackerName(t *testing.T) {
	a, _ := New(mechanism.RSSRTS(8), 1)
	if a.Name() != "attack[RSS+RTS(8)]" {
		t.Errorf("Name = %q", a.Name())
	}
}

// Synthetic end-to-end: build "measurements" directly from the true
// access counts (a noise-free timing channel) and verify the baseline
// attack recovers a key byte, while the same attack fails against
// constant measurements (coalescing disabled).
func TestBaselineAttackOnSyntheticChannel(t *testing.T) {
	key := []byte("attack test key!")
	c, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	lrk := c.LastRoundKey()

	const samples = 100
	src := rng.New(11)
	var cts [][]kernels.Line
	var times []float64
	basePlan := core.Baseline().NewPlan(rng.New(1))
	for n := 0; n < samples; n++ {
		pts := kernels.RandomPlaintext(src, 32)
		lines := make([]kernels.Line, 32)
		for i, pt := range pts {
			ct, _ := c.TraceEncrypt(pt[:])
			lines[i] = ct
		}
		cts = append(cts, lines)
		// Noise-free channel: time = true access count for byte 0's
		// lookup... the attacker only sees aggregate time, so sum over
		// all 16 byte positions like the real last round does.
		total := 0
		for j := 0; j < 16; j++ {
			total += EstimateSample(basePlan, lines, j, lrk[j])
		}
		times = append(times, float64(total))
	}

	a := Baseline(5)
	br, err := a.RecoverByte(cts, times, 0)
	if err != nil {
		t.Fatal(err)
	}
	if br.Best != lrk[0] {
		t.Errorf("baseline attack failed: recovered %#02x, true %#02x (rank %d)",
			br.Best, lrk[0], br.Rank(lrk[0]))
	}

	// Constant measurements (no timing channel): correlation collapses
	// and the winner is essentially arbitrary — the correct byte gains
	// no advantage.
	flat := make([]float64, samples)
	for i := range flat {
		flat[i] = 4242
	}
	br2, err := a.RecoverByte(cts, flat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if br2.Correlations[lrk[0]] != 0 {
		t.Errorf("flat channel: correct-byte correlation %v, want 0", br2.Correlations[lrk[0]])
	}
}

func TestKeyRankMetrics(t *testing.T) {
	kr := &KeyResult{}
	var trueKey [16]byte
	for j := 0; j < 16; j++ {
		trueKey[j] = 0x40
		br := &ByteResult{}
		// Give the correct byte rank j: j guesses score higher.
		for m := 0; m < j; m++ {
			br.Correlations[m] = 1 - float64(m)/100
		}
		br.Correlations[0x40] = 0.5
		kr.Bytes[j] = br
	}
	// Ranks are 0,1,...,15: mean 7.5.
	if ge := kr.GuessingEntropy(trueKey); ge != 7.5 {
		t.Errorf("GuessingEntropy = %v, want 7.5", ge)
	}
	bits := kr.RemainingKeyBits(trueKey)
	want := 0.0
	for j := 0; j < 16; j++ {
		want += math.Log2(float64(j + 1))
	}
	if math.Abs(bits-want) > 1e-9 {
		t.Errorf("RemainingKeyBits = %v, want %v", bits, want)
	}
	// Perfect attack: all ranks 0 -> 0 bits.
	perfect := &KeyResult{}
	for j := 0; j < 16; j++ {
		br := &ByteResult{}
		br.Correlations[trueKey[j]] = 1
		perfect.Bytes[j] = br
	}
	if perfect.RemainingKeyBits(trueKey) != 0 {
		t.Error("perfect attack leaves bits")
	}
}

func TestDecryptAttackOnSyntheticChannel(t *testing.T) {
	// The decryption-side attack recovers round key 0 (= the original
	// key byte) from a noise-free access-count channel built with
	// LastRoundDecIndex, mirroring TestBaselineAttackOnSyntheticChannel.
	key := []byte("dec attack key!!")
	c, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	rk0 := c.RoundKey(0)

	const samples = 100
	src := rng.New(51)
	var outputs [][]kernels.Line
	var times []float64
	basePlan := core.Baseline().NewPlan(rng.New(1))
	for n := 0; n < samples; n++ {
		cts := kernels.RandomPlaintext(src, 32)
		pts := make([]kernels.Line, 32)
		for i, ct := range cts {
			pt, _ := c.TraceDecrypt(ct[:])
			pts[i] = pt
		}
		outputs = append(outputs, pts)
		total := 0
		for j := 0; j < 16; j++ {
			total += EstimateSampleWith(basePlan, pts, j, rk0[j], aes.LastRoundDecIndex)
		}
		times = append(times, float64(total))
	}

	a, err := NewDecrypt(mechanism.Baseline(), 5)
	if err != nil {
		t.Fatal(err)
	}
	br, err := a.RecoverByte(outputs, times, 0)
	if err != nil {
		t.Fatal(err)
	}
	if br.Best != rk0[0] {
		t.Errorf("decryption attack: recovered %#02x, true %#02x (rank %d)",
			br.Best, rk0[0], br.Rank(rk0[0]))
	}
}

func TestNewWithIndexValidation(t *testing.T) {
	if _, err := NewWithIndex(mechanism.Baseline(), 1, nil); err == nil {
		t.Error("nil index function accepted")
	}
}

func TestEstimateSharedSampleDegrees(t *testing.T) {
	// All lines share byte 0: every thread computes the same index ->
	// broadcast -> degree 1 per warp.
	var lines []kernels.Line
	for i := 0; i < 32; i++ {
		var l kernels.Line
		l[0] = 0x3c
		lines = append(lines, l)
	}
	if got := EstimateSharedSample(lines, 0, 0x11); got != 1 {
		t.Errorf("broadcast degree = %d, want 1", got)
	}
	// Two warps double the sum.
	double := append(append([]kernels.Line{}, lines...), lines...)
	if got := EstimateSharedSample(double, 0, 0x11); got != 2 {
		t.Errorf("two-warp degree = %d, want 2", got)
	}
	// Degree is bounded by ceil(32 threads / 32 banks distinct words):
	// at most 8 (256 entries / 32 banks words per bank).
	r := rng.New(97)
	for trial := 0; trial < 50; trial++ {
		rl := kernels.RandomPlaintext(r, 32)
		d := EstimateSharedSample(rl, trial%16, byte(trial))
		if d < 1 || d > 8 {
			t.Fatalf("degree %d outside [1,8]", d)
		}
	}
}

func TestBankConflictAttackerOnSyntheticChannel(t *testing.T) {
	// Noise-free bank-conflict channel: measurement = true summed
	// degree over all byte positions; byte 0 must be recoverable.
	key := []byte("bank conflict ky")
	c, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	lrk := c.LastRoundKey()
	src := rng.New(101)
	var cts [][]kernels.Line
	var times []float64
	for n := 0; n < 500; n++ {
		pts := kernels.RandomPlaintext(src, 32)
		lines := make([]kernels.Line, 32)
		for i, pt := range pts {
			ct, _ := c.TraceEncrypt(pt[:])
			lines[i] = ct
		}
		cts = append(cts, lines)
		total := 0
		for j := 0; j < 16; j++ {
			total += EstimateSharedSample(lines, j, lrk[j])
		}
		times = append(times, float64(total))
	}
	// The bank-conflict channel is weaker per byte than the coalescing
	// channel (the degree is a small-range max statistic), so judge on
	// the full key: most bytes should rank near the top.
	var a BankConflictAttacker
	kr, err := a.RecoverKey(cts, times)
	if err != nil {
		t.Fatal(err)
	}
	if ge := kr.GuessingEntropy(lrk); ge > 20 {
		t.Errorf("bank-conflict attack guessing entropy %v, want near-zero", ge)
	}
	if kr.CorrectCount(lrk) < 8 {
		t.Errorf("bank-conflict attack recovered only %d/16 bytes", kr.CorrectCount(lrk))
	}
	if _, err := a.RecoverByte(cts, times[:3], 0); err == nil {
		t.Error("length mismatch accepted")
	}
}
