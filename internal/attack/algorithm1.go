package attack

import (
	"fmt"

	"rcoal/internal/aes"
	"rcoal/internal/kernels"
)

// Algorithm1 is a direct transcription of the paper's Algorithm 1: the
// FSS attack's computation of the last-round coalesced accesses for
// one key-byte guess, given the ciphertext lines of a single warp and
// the number of subwarps. Lines are split into numSubwarp contiguous
// groups (the in-order thread→subwarp mapping of FSS); each group's
// accesses coalesce independently via a per-block holder array.
//
// The generic EstimateSample subsumes this for every mechanism; this
// literal version exists as executable documentation and as a
// cross-check in the test suite.
func Algorithm1(cipher []kernels.Line, j int, guess byte, numSubwarp int) int {
	if numSubwarp < 1 || len(cipher)%numSubwarp != 0 {
		panic(fmt.Sprintf("attack: Algorithm1 num-subwarp %d must divide %d lines", numSubwarp, len(cipher)))
	}
	lastRoundMemAccesses := 0
	memAccessesSubwarp := make([]int, numSubwarp)
	len_ := len(cipher)
	for grp := 0; grp < numSubwarp; grp++ {
		var holder [aes.BlocksPerTable]int
		for line := grp * len_ / numSubwarp; line < (grp+1)*len_/numSubwarp; line++ {
			holder[aes.LastRoundIndex(cipher[line][j], guess)>>4]++
		}
		for i := range holder {
			if holder[i] != 0 {
				memAccessesSubwarp[grp]++
			}
		}
	}
	for grp := 0; grp < numSubwarp; grp++ {
		lastRoundMemAccesses += memAccessesSubwarp[grp]
	}
	return lastRoundMemAccesses
}
