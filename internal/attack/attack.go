// Package attack implements the correlation timing attacks of the
// RCoal paper: the baseline attack of Jiang et al. (Section II-C) and
// the "corresponding attacks" against each defense mechanism (Section
// IV-E), which mimic the defense's coalescing logic on the attacker's
// side.
//
// The attack recovers the AES last-round key byte by byte. For key
// byte j and guess m, each ciphertext byte c_j implies a last-round
// table index t_j = T4⁻¹[c_j ⊕ m] (Equation 3); grouping the indices'
// memory blocks by the assumed subwarp plan predicts the number of
// last-round coalesced accesses (Algorithm 1, generalized to any
// mechanism). Correlating the predictions with the measured last-round
// execution time over many samples ranks the 256 guesses; the correct
// byte wins when the defense leaves enough signal.
//
// The decisive asymmetry: a corresponding attack knows the *mechanism*
// (and num-subwarp) but can never know the *hardware random stream*,
// so for RSS/RTS defenses its simulated plans differ per sample from
// the plans the GPU actually drew.
package attack

import (
	"fmt"
	"math/bits"

	"rcoal/internal/aes"
	"rcoal/internal/core"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/rng"
	"rcoal/internal/stats"
)

// KeyBytes is the number of last-round key bytes (AES state size).
const KeyBytes = 16

// IndexFunc derives the final-round table-lookup index from one
// observed output byte and a key-byte guess. Encryption attacks use
// aes.LastRoundIndex (Equation 3, over ciphertext bytes); decryption
// attacks use aes.LastRoundDecIndex (over recovered plaintext bytes).
type IndexFunc func(observedByte, keyGuess byte) byte

// Attacker runs correlation attacks under an assumed defense
// mechanism. It is not safe for concurrent use (the per-sample plan
// cache grows lazily) — create one per goroutine.
type Attacker struct {
	mech    mechanism.Mechanism
	seed    uint64
	indexFn IndexFunc

	// planCache[n] is the attacker's simulated plan for sample n; one
	// plan per sample, shared across byte positions and guesses, just
	// as the hardware fixes one plan per launch.
	planCache []core.Plan

	// nibTab[m][c] = indexFn(c, m) >> 4, the memory-block nibble of
	// the final-round table index for ciphertext byte c under guess m.
	// Built lazily on the first RecoverByte and immutable afterwards,
	// so clones share it.
	nibTab *[256][256]uint8

	// estBuf and dyBuf are per-attacker scratch for RecoverByte
	// (estimation vector and centered measurements), reused across
	// byte positions so a full key recovery does not allocate per
	// guess. Never shared between clones.
	estBuf, dyBuf []float64
}

// New builds an attacker that assumes the GPU runs the given defense
// mechanism — the "corresponding attack" of Section IV-E — targeting
// an encryption service. For randomized mechanisms the seed drives the
// attacker's *own* simulation of the defense randomness; it is
// unrelated to (and cannot match) the victim's hardware stream.
// Mechanisms that do not randomize the subwarp plan (delay, shuffle,
// no-coalescing) realize the whole-warp plan, so their corresponding
// attack degenerates to the original attack of Jiang et al.
func New(m mechanism.Mechanism, seed uint64) (*Attacker, error) {
	return NewWithIndex(m, seed, aes.LastRoundIndex)
}

// NewDecrypt builds an attacker targeting a GPU *decryption* service:
// the observed lines are recovered plaintexts and the recovered key
// bytes are the equivalent inverse cipher's final round key — which
// for AES is the original key itself.
func NewDecrypt(m mechanism.Mechanism, seed uint64) (*Attacker, error) {
	return NewWithIndex(m, seed, aes.LastRoundDecIndex)
}

// NewWithIndex builds an attacker with a custom final-round index
// derivation.
func NewWithIndex(m mechanism.Mechanism, seed uint64, fn IndexFunc) (*Attacker, error) {
	if m == nil {
		return nil, fmt.Errorf("attack: nil mechanism")
	}
	if err := m.ValidateFor(core.DefaultWarpSize); err != nil {
		return nil, fmt.Errorf("attack: invalid assumed mechanism: %w", err)
	}
	if fn == nil {
		return nil, fmt.Errorf("attack: nil index function")
	}
	return &Attacker{mech: m, seed: seed, indexFn: fn}, nil
}

// Baseline returns the original attack of Jiang et al.: whole-warp
// coalescing assumed (num-subwarp = 1).
func Baseline(seed uint64) *Attacker {
	a, err := New(mechanism.Baseline(), seed)
	if err != nil {
		panic(err) // baseline mechanism is always valid
	}
	return a
}

// Name describes the attack, e.g. "attack[RSS+RTS(8)]".
func (a *Attacker) Name() string { return "attack[" + a.mech.Name() + "]" }

// Warm precomputes the plan cache for n samples. Warming before
// Clone lets sibling workers share the derivation cost: clones copy
// the warmed cache and never recompute those plans.
func (a *Attacker) Warm(n int) {
	if n > 0 {
		a.plan(n - 1)
	}
}

// Clone returns an independent attacker with the same assumed
// mechanism, seed, and index function, plus a copy of the plan cache
// derived so far. Because plans are a pure function of (seed, sample index),
// a clone's estimates are byte-identical to its parent's — but each
// clone owns its cache growth, so clones may run on sibling
// goroutines while the parent and other clones stay untouched. The
// nibble table is shared when already built (it is immutable);
// scoring scratch buffers are never shared.
func (a *Attacker) Clone() *Attacker {
	return &Attacker{
		mech:      a.mech,
		seed:      a.seed,
		indexFn:   a.indexFn,
		planCache: append([]core.Plan(nil), a.planCache...),
		nibTab:    a.nibTab,
	}
}

// nibbleTable returns the lazily built 64 KiB lookup table
// nibTab[m][c] = indexFn(c, m) >> 4. Tabulating the index derivation
// once turns the scoring inner loop into two array reads and an OR.
func (a *Attacker) nibbleTable() *[256][256]uint8 {
	if a.nibTab == nil {
		t := new([256][256]uint8)
		for m := 0; m < 256; m++ {
			for c := 0; c < 256; c++ {
				t[m][c] = a.indexFn(byte(c), byte(m)) >> 4
			}
		}
		a.nibTab = t
	}
	return a.nibTab
}

func (a *Attacker) plan(n int) core.Plan {
	for len(a.planCache) <= n {
		r := rng.New(a.seed).Split(uint64(len(a.planCache)) + 1)
		l, err := a.mech.NewLaunch(core.DefaultWarpSize, r)
		if err != nil {
			// The mechanism was validated at construction; a failure here
			// is a programming error, not untrusted input.
			panic(fmt.Sprintf("attack: drawing plan %d: %v", len(a.planCache), err))
		}
		a.planCache = append(a.planCache, l.Plan)
	}
	return a.planCache[n]
}

// EstimateSample predicts the last-round coalesced accesses of one
// sample for key byte j and guess m under the given plan: Algorithm 1
// generalized from FSS to arbitrary subwarp plans and multiple warps.
// Lines map to warp threads sequentially, like the victim kernel.
func EstimateSample(plan core.Plan, lines []kernels.Line, j int, m byte) int {
	return EstimateSampleWith(plan, lines, j, m, aes.LastRoundIndex)
}

// EstimateSampleWith is EstimateSample with a custom index derivation
// (decryption attacks pass aes.LastRoundDecIndex).
func EstimateSampleWith(plan core.Plan, lines []kernels.Line, j int, m byte, fn IndexFunc) int {
	if j < 0 || j >= KeyBytes {
		panic(fmt.Sprintf("attack: key byte index %d out of range", j))
	}
	warpSize := plan.WarpSize()
	nsw := plan.NumSubwarps()
	var masks [core.DefaultWarpSize]uint16 // R=16 blocks per table fits uint16
	if nsw > len(masks) {
		panic(fmt.Sprintf("attack: plan has %d subwarps, estimator supports %d", nsw, len(masks)))
	}
	total := 0
	for base := 0; base < len(lines); base += warpSize {
		hi := base + warpSize
		if hi > len(lines) {
			hi = len(lines)
		}
		for s := 0; s < nsw; s++ {
			masks[s] = 0
		}
		for t := base; t < hi; t++ {
			// holder[T4inv[c_j ^ k_j] >> 4]++ of Algorithm 1, as a
			// per-subwarp block bitmask.
			idx := fn(lines[t][j], m)
			masks[plan.SID[t-base]] |= 1 << (idx >> 4)
		}
		for s := 0; s < nsw; s++ {
			total += bits.OnesCount16(masks[s])
		}
	}
	return total
}

// estimateSampleRow is the hot core of EstimateSampleWith with the
// per-guess index derivation pre-tabulated: row[c] = fn(c, m) >> 4.
// The arithmetic is otherwise identical, so its result matches
// EstimateSampleWith (and therefore Algorithm 1) exactly.
func estimateSampleRow(plan core.Plan, lines []kernels.Line, j int, row *[256]uint8) int {
	warpSize := plan.WarpSize()
	nsw := plan.NumSubwarps()
	var masks [core.DefaultWarpSize]uint16
	if nsw > len(masks) {
		panic(fmt.Sprintf("attack: plan has %d subwarps, estimator supports %d", nsw, len(masks)))
	}
	total := 0
	for base := 0; base < len(lines); base += warpSize {
		hi := base + warpSize
		if hi > len(lines) {
			hi = len(lines)
		}
		for s := 0; s < nsw; s++ {
			masks[s] = 0
		}
		for t := base; t < hi; t++ {
			masks[plan.SID[t-base]] |= 1 << row[lines[t][j]]
		}
		for s := 0; s < nsw; s++ {
			total += bits.OnesCount16(masks[s])
		}
	}
	return total
}

// EstimationVector returns Û_{k_j^m}: the predicted access counts for
// guess m of byte j across all samples.
func (a *Attacker) EstimationVector(cts [][]kernels.Line, j int, m byte) []float64 {
	out := make([]float64, len(cts))
	for n, lines := range cts {
		out[n] = float64(EstimateSampleWith(a.plan(n), lines, j, m, a.indexFn))
	}
	return out
}

// ByteResult is the attack outcome for one key byte position.
type ByteResult struct {
	// Correlations[m] is the Pearson correlation between guess m's
	// estimation vector and the measurement vector.
	Correlations [256]float64
	// Best is the guess with the maximum correlation — the attacker's
	// answer.
	Best byte
	// BestCorr is that maximum correlation.
	BestCorr float64
}

// Rank returns the position (0 = winner) of the given byte value in
// the correlation ranking; low ranks mean the attack nearly succeeded.
func (b *ByteResult) Rank(v byte) int {
	rank := 0
	target := b.Correlations[v]
	for m := 0; m < 256; m++ {
		if byte(m) != v && b.Correlations[m] > target {
			rank++
		}
	}
	return rank
}

// RecoverByte attacks key byte j: it builds the 256×N access matrix
// (Figure 4b) and correlates each row with the measurement vector.
// The scoring loop runs over reused scratch with the index derivation
// tabulated and the measurement centering hoisted out of the 256-guess
// loop; every accumulation keeps the order of stats.Pearson, so the
// correlations are bit-identical to scoring each guess independently.
func (a *Attacker) RecoverByte(cts [][]kernels.Line, measurements []float64, j int) (*ByteResult, error) {
	if len(cts) != len(measurements) {
		return nil, fmt.Errorf("attack: %d ciphertext samples vs %d measurements", len(cts), len(measurements))
	}
	if len(cts) < 2 {
		return nil, fmt.Errorf("attack: need at least 2 samples, have %d", len(cts))
	}
	if j < 0 || j >= KeyBytes {
		panic(fmt.Sprintf("attack: key byte index %d out of range", j))
	}
	n := len(cts)
	a.plan(n - 1) // materialize the plan cache before the hot loop
	tab := a.nibbleTable()
	if cap(a.dyBuf) < n {
		a.dyBuf = make([]float64, n)
		a.estBuf = make([]float64, n)
	}
	dy, u := a.dyBuf[:n], a.estBuf[:n]
	syy := stats.Center(dy, measurements)
	res := &ByteResult{BestCorr: -2}
	for m := 0; m < 256; m++ {
		row := &tab[m]
		for s, lines := range cts {
			u[s] = float64(estimateSampleRow(a.planCache[s], lines, j, row))
		}
		r, err := stats.PearsonCentered(u, dy, syy)
		if err != nil {
			return nil, err
		}
		res.Correlations[m] = r
		if r > res.BestCorr {
			res.BestCorr = r
			res.Best = byte(m)
		}
	}
	return res, nil
}

// KeyResult is the outcome of a full 16-byte last-round key attack.
type KeyResult struct {
	Bytes [KeyBytes]*ByteResult
	// Key is the attacker's recovered last-round key.
	Key [KeyBytes]byte
}

// RecoverKey attacks all 16 last-round key bytes.
func (a *Attacker) RecoverKey(cts [][]kernels.Line, measurements []float64) (*KeyResult, error) {
	kr := &KeyResult{}
	for j := 0; j < KeyBytes; j++ {
		br, err := a.RecoverByte(cts, measurements, j)
		if err != nil {
			return nil, err
		}
		kr.Bytes[j] = br
		kr.Key[j] = br.Best
	}
	return kr, nil
}

// CorrectCount returns how many recovered bytes match the true
// last-round key.
func (k *KeyResult) CorrectCount(trueKey [KeyBytes]byte) int {
	n := 0
	for j := 0; j < KeyBytes; j++ {
		if k.Key[j] == trueKey[j] {
			n++
		}
	}
	return n
}

// AvgCorrectCorrelation returns the average, over the 16 byte
// positions, of the correlation the *correct* key byte achieved — the
// security metric of Figures 7b, 15, and 18a.
func (k *KeyResult) AvgCorrectCorrelation(trueKey [KeyBytes]byte) float64 {
	sum := 0.0
	for j := 0; j < KeyBytes; j++ {
		sum += k.Bytes[j].Correlations[trueKey[j]]
	}
	return sum / KeyBytes
}
