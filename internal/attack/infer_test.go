package attack

import (
	"math"
	"testing"

	"rcoal/internal/aesgpu"
	"rcoal/internal/gpusim"
	"rcoal/internal/mechanism"
)

func TestCalibrationValidation(t *testing.T) {
	if _, err := CalibrateSubwarps(gpusim.DefaultConfig(), mechanism.FSS, []int{1}, 0, 32, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestInferEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Infer on empty calibration did not panic")
		}
	}()
	Calibration{}.Infer(100)
}

func TestInferMatching(t *testing.T) {
	cal := Calibration{1: 100, 2: 200, 4: 400}
	if m, _ := cal.Infer(195); m != 2 {
		t.Errorf("inferred %d, want 2", m)
	}
	if m, _ := cal.Infer(90); m != 1 {
		t.Errorf("inferred %d, want 1", m)
	}
	m, margin := cal.Infer(399)
	if m != 4 || margin <= 0 {
		t.Errorf("inferred %d margin %v", m, margin)
	}
	if got := cal.Candidates(); len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Errorf("candidates %v", got)
	}
	single := Calibration{8: 800}
	if m, margin := single.Infer(1); m != 8 || !math.IsInf(margin, 1) {
		t.Errorf("single-candidate inference: %d, %v", m, margin)
	}
}

func TestInferSubwarpsEndToEnd(t *testing.T) {
	// The paper's claim: execution-time differences across num-subwarp
	// are large enough to identify the victim's M remotely.
	candidates := []int{1, 2, 4, 8, 16, 32}
	cal, err := CalibrateSubwarps(gpusim.DefaultConfig(), mechanism.FSS, candidates, 8, 32, 0xCA1)
	if err != nil {
		t.Fatal(err)
	}
	for _, trueM := range candidates {
		cfg := gpusim.DefaultConfig()
		cfg.Defense = mechanism.FSS(trueM)
		// Victim uses its own secret key and seed.
		srv, err := aesgpu.NewServer(cfg, []byte("victims own key!"))
		if err != nil {
			t.Fatal(err)
		}
		ds, err := srv.Collect(8, 32, x71C71M(trueM))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := cal.Infer(ObserveMeanTime(ds))
		if got != trueM {
			t.Errorf("victim M=%d inferred as %d", trueM, got)
		}
	}
}

// x71C71M derives a per-M victim seed.
func x71C71M(m int) uint64 { return 0x71C71 ^ uint64(m)<<8 }
