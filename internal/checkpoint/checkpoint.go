// Package checkpoint persists per-cell experiment results to an
// append-only JSONL journal so an interrupted sweep can resume without
// re-running finished cells. The format is built for crash-time
// realities:
//
//   - one line per completed cell, appended with a single write and
//     fsynced, so a crash can at worst truncate the final line;
//   - every line carries a CRC-32 of its payload; on resume, lines
//     that fail the checksum (torn writes, disk corruption) are
//     discarded and their cells simply re-run;
//   - the first line fingerprints the experiment configuration; a
//     journal written under different options refuses to resume rather
//     than silently splicing incompatible results.
//
// Beyond completed results the journal doubles as a distributed work
// ledger: RecordLease appends a durable record that a cell was handed
// to a worker (see Lease), so a restarted coordinator knows which
// cells were in flight and can re-issue them; RecordOnce gives the
// first completion of a cell the win when a timed-out lease is
// re-issued and both holders eventually report.
//
// Values are stored as raw JSON produced by the caller. Results must
// round-trip exactly (encoding/json renders float64s with the minimal
// digits that re-parse to the same bit pattern), preserving the
// repo-wide determinism contract: a resumed sweep's output is
// byte-identical to an uninterrupted run's.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// line is the JSONL wire format for one journaled cell.
type line struct {
	// K is the caller's cell key, unique within the journal.
	K string `json:"k"`
	// C is the CRC-32 (IEEE) of V, hex-encoded.
	C string `json:"c"`
	// V is the cell's result, verbatim caller JSON.
	V json.RawMessage `json:"v"`
}

// leaseLine is the JSONL wire format for one lease record: the cell
// identified by L was handed to worker W as issue number N at unix-nano
// time T. The checksum covers the canonical payload (see leasePayload)
// so a torn lease line is discarded on resume exactly like a torn
// result line.
type leaseLine struct {
	L string `json:"l"`
	W string `json:"w"`
	N int64  `json:"n"`
	T int64  `json:"t"`
	C string `json:"c"`
}

// anyLine is the union the resume scanner parses before deciding which
// kind a line is: result lines carry K, lease lines carry L.
type anyLine struct {
	K string          `json:"k"`
	C string          `json:"c"`
	V json.RawMessage `json:"v"`
	L string          `json:"l"`
	W string          `json:"w"`
	N int64           `json:"n"`
	T int64           `json:"t"`
}

// Lease is a durable record that a cell was handed out for execution.
// Recording one before issuing the lease over the network makes the
// hand-out survive a coordinator crash: on resume the cell is known to
// be in flight (and, its holder being gone, immediately re-issuable)
// rather than silently forgotten.
type Lease struct {
	// Key is the cell the lease covers.
	Key string
	// Worker identifies the holder (informational).
	Worker string
	// Seq is the per-key issue counter; re-issues after a timeout or
	// cancellation bump it, invalidating completions of older issues.
	Seq int64
	// IssuedUnixNano is the issue time (informational; the authority on
	// expiry is the live coordinator, not the journal).
	IssuedUnixNano int64
}

func leasePayload(l Lease) string {
	return fmt.Sprintf("%s|%s|%d|%d", l.Key, l.Worker, l.Seq, l.IssuedUnixNano)
}

// metaLine is the first journal line, fingerprinting the run.
type metaLine struct {
	Meta json.RawMessage `json:"meta"`
	C    string          `json:"c"`
}

func checksum(v []byte) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(v))
}

// Journal is an open checkpoint file. Record is safe for concurrent
// use by the runner pool's workers.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	seen   map[string]json.RawMessage
	leases map[string]Lease

	// Discarded counts journal lines dropped on resume because they
	// were malformed or failed their checksum. The corresponding cells
	// re-run, so a nonzero count is survivable — but worth reporting.
	Discarded int
	// Discards records where and why each line was dropped, so resume
	// logs can point at the exact journal damage instead of only a
	// count.
	Discards []Discard
}

// Discard describes one journal line dropped on resume.
type Discard struct {
	// Line is the 1-based line number in the journal file.
	Line int
	// Reason classifies the damage (malformed JSON, checksum
	// mismatch, missing key).
	Reason string
}

// Create starts a fresh journal at path, truncating any previous one,
// and writes the meta fingerprint line. meta must marshal to stable
// JSON (marshal the same struct to compare later).
func Create(path string, meta any) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", path, err)
	}
	j := &Journal{f: f, seen: make(map[string]json.RawMessage), leases: make(map[string]Lease)}
	if err := j.writeMeta(meta); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// Resume opens the journal at path, creating it if missing. It
// verifies the meta fingerprint against meta — a mismatch means the
// journal belongs to a differently-configured run and resuming would
// splice incompatible results, so it is an error. Lines that are
// malformed or fail their checksum are discarded (counted in
// Discarded); their cells are simply absent from Lookup and re-run.
func Resume(path string, meta any) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening %s: %w", path, err)
	}
	j := &Journal{f: f, seen: make(map[string]json.RawMessage), leases: make(map[string]Lease)}

	wantMeta, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: marshaling meta: %w", err)
	}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	first := true
	line := 0
	discard := func(reason string) {
		j.Discarded++
		j.Discards = append(j.Discards, Discard{Line: line, Reason: reason})
	}
	for sc.Scan() {
		raw := sc.Bytes()
		line++
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		if first {
			first = false
			var m metaLine
			if err := json.Unmarshal(raw, &m); err != nil || m.Meta == nil || checksum(m.Meta) != m.C {
				f.Close()
				return nil, fmt.Errorf("checkpoint: %s: unreadable meta line", path)
			}
			if !bytes.Equal(compactJSON(m.Meta), compactJSON(wantMeta)) {
				f.Close()
				return nil, fmt.Errorf("checkpoint: %s was written by a different experiment configuration; delete it or drop -resume (journal meta %s, current %s)",
					path, m.Meta, wantMeta)
			}
			continue
		}
		var l anyLine
		if err := json.Unmarshal(raw, &l); err != nil {
			discard("malformed JSON (torn line)")
			continue
		}
		if l.L != "" {
			// Lease record. A torn or corrupted one is discarded like a
			// torn result line: at worst the coordinator forgets a lease
			// was out and re-issues, which is always safe.
			ls := Lease{Key: l.L, Worker: l.W, Seq: l.N, IssuedUnixNano: l.T}
			if checksum([]byte(leasePayload(ls))) != l.C {
				discard("lease checksum mismatch")
				continue
			}
			// Last lease per key wins: it carries the highest Seq issued.
			j.leases[ls.Key] = ls
			continue
		}
		if l.K == "" {
			discard("result line without key")
			continue
		}
		if checksum(l.V) != l.C {
			discard("result checksum mismatch")
			continue
		}
		// Last occurrence wins: a key re-recorded after a discarded
		// predecessor reflects the most recent completed run.
		j.seen[l.K] = l.V
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: reading %s: %w", path, err)
	}

	if first {
		// Empty (likely just created) journal: write the meta line.
		if err := j.writeMeta(meta); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	// Position for appends. O_APPEND is not used so that the scanner
	// above and the writes below share one descriptor simply; all
	// writes happen under j.mu at the offset we set here.
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: seeking %s: %w", path, err)
	}
	// A crash mid-append can leave a torn final line with no newline.
	// Terminate it so the next Record starts on a fresh line instead of
	// concatenating onto the fragment (which would corrupt it too); the
	// fragment itself already fails its checksum and stays discarded.
	if end > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, end-1); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: reading %s: %w", path, err)
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("checkpoint: terminating torn line in %s: %w", path, err)
			}
		}
	}
	return j, nil
}

func (j *Journal) writeMeta(meta any) error {
	m, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("checkpoint: marshaling meta: %w", err)
	}
	out, err := json.Marshal(metaLine{Meta: m, C: checksum(m)})
	if err != nil {
		return err
	}
	return j.append(out)
}

// compactJSON normalizes whitespace so fingerprint comparison is
// content-based.
func compactJSON(raw []byte) []byte {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return raw
	}
	return buf.Bytes()
}

// Lookup returns the journaled result for key, if any.
func (j *Journal) Lookup(key string) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.seen[key]
	return v, ok
}

// Range calls fn for every journaled result until fn returns false.
// Iteration order is unspecified. fn must not call back into the
// journal (the lock is held) — it is for draining small side journals,
// e.g. a worker replaying parked degraded-mode completions.
func (j *Journal) Range(fn func(key string, value json.RawMessage) bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for k, v := range j.seen {
		if !fn(k, v) {
			return
		}
	}
}

// Len reports how many journaled cells are available to Lookup.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Leases returns the journaled lease records for cells that have no
// completed result — the in-flight set as of the last crash or the
// current run. Keys whose result line landed are complete and omitted.
// The returned map is a copy.
func (j *Journal) Leases() map[string]Lease {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]Lease)
	for k, l := range j.leases {
		if _, done := j.seen[k]; !done {
			out[k] = l
		}
	}
	return out
}

// RecordLease journals a lease hand-out and syncs it to disk before
// returning, so the coordinator only grants a lease the ledger already
// remembers. Safe for concurrent use.
func (j *Journal) RecordLease(l Lease) error {
	if l.Key == "" {
		return fmt.Errorf("checkpoint: empty lease key")
	}
	out, err := json.Marshal(leaseLine{
		L: l.Key, W: l.Worker, N: l.Seq, T: l.IssuedUnixNano,
		C: checksum([]byte(leasePayload(l))),
	})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(out); err != nil {
		return err
	}
	j.leases[l.Key] = l
	return nil
}

// RecordOnce journals value under key unless a result for key is
// already present, in which case it reports recorded=false and leaves
// the journal untouched — first writer wins. This is the duplicate-
// completion guard for distributed sweeps, where a timed-out lease's
// original holder may eventually report the same (deterministic) cell
// a re-issued lease already delivered.
func (j *Journal) RecordOnce(key string, value any) (recorded bool, err error) {
	if key == "" {
		return false, fmt.Errorf("checkpoint: empty cell key")
	}
	v, err := json.Marshal(value)
	if err != nil {
		return false, fmt.Errorf("checkpoint: marshaling cell %q: %w", key, err)
	}
	out, err := json.Marshal(line{K: key, C: checksum(v), V: v})
	if err != nil {
		return false, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.seen[key]; dup {
		return false, nil
	}
	if err := j.appendLocked(out); err != nil {
		return false, err
	}
	j.seen[key] = v
	return true, nil
}

// Record journals value (marshaled to JSON) under key and syncs it to
// disk before returning, so a cell reported complete stays complete
// across a crash. Safe for concurrent use.
func (j *Journal) Record(key string, value any) error {
	if key == "" {
		return fmt.Errorf("checkpoint: empty cell key")
	}
	v, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("checkpoint: marshaling cell %q: %w", key, err)
	}
	out, err := json.Marshal(line{K: key, C: checksum(v), V: v})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(out); err != nil {
		return err
	}
	j.seen[key] = v
	return nil
}

func (j *Journal) append(out []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(out)
}

func (j *Journal) appendLocked(out []byte) error {
	// One Write call per line keeps a crash from interleaving partial
	// lines; the checksum catches the torn tail line either way.
	if _, err := j.f.Write(append(out, '\n')); err != nil {
		return fmt.Errorf("checkpoint: appending: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing: %w", err)
	}
	return nil
}

// Close releases the journal file. The journal is already durable —
// every Record synced — so Close only fails if the descriptor does.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
