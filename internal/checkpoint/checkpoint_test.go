package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"rcoal/internal/faultinject"
)

type testMeta struct {
	Experiment string `json:"experiment"`
	Samples    int    `json:"samples"`
	Seed       int64  `json:"seed"`
}

type testCell struct {
	Cell   int     `json:"cell"`
	Cycles float64 `json:"cycles"`
}

func TestCreateRecordResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := testMeta{Experiment: "sweep", Samples: 30, Seed: 1}

	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Record(fmt.Sprintf("cell/%d", i), testCell{Cell: i, Cycles: 1.5 * float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 3 || r.Discarded != 0 {
		t.Fatalf("resumed len=%d discarded=%d, want 3/0", r.Len(), r.Discarded)
	}
	raw, ok := r.Lookup("cell/2")
	if !ok {
		t.Fatal("cell/2 missing after resume")
	}
	var c testCell
	if err := json.Unmarshal(raw, &c); err != nil {
		t.Fatal(err)
	}
	if c.Cell != 2 || c.Cycles != 3.0 {
		t.Errorf("cell/2 = %+v", c)
	}
	if _, ok := r.Lookup("cell/9"); ok {
		t.Error("phantom cell found")
	}
	// Appending after resume works.
	if err := r.Record("cell/3", testCell{Cell: 3}); err != nil {
		t.Fatal(err)
	}
	r2, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 4 {
		t.Errorf("after append+resume len = %d, want 4", r2.Len())
	}
}

func TestResumeCreatesMissingJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.journal")
	meta := testMeta{Experiment: "x"}
	j, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Errorf("fresh journal len = %d", j.Len())
	}
	if err := j.Record("a", testCell{}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// The meta line written on creation must satisfy a later resume.
	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Errorf("len = %d, want 1", r.Len())
	}
}

func TestResumeRejectsMetaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := Create(path, testMeta{Experiment: "sweep", Samples: 30})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, err = Resume(path, testMeta{Experiment: "sweep", Samples: 50})
	if err == nil {
		t.Fatal("resume with mismatched meta succeeded")
	}
	if !strings.Contains(err.Error(), "different experiment configuration") {
		t.Errorf("undiagnostic error: %v", err)
	}
}

func TestCorruptLinesDiscardedNotFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Record(fmt.Sprintf("cell/%d", i), testCell{Cell: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Corrupt the line for cell/1 (line 2: line 0 is meta).
	if err := faultinject.CorruptJournalLine(path, 2); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Discarded != 1 {
		t.Errorf("Discarded = %d, want 1", r.Discarded)
	}
	if _, ok := r.Lookup("cell/1"); ok {
		t.Error("corrupted cell still resolvable")
	}
	for _, k := range []string{"cell/0", "cell/2", "cell/3"} {
		if _, ok := r.Lookup(k); !ok {
			t.Errorf("healthy cell %s lost", k)
		}
	}
}

func TestTruncatedTailLineDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("cell/0", testCell{Cell: 0})
	j.Record("cell/1", testCell{Cell: 1})
	j.Close()

	// Simulate a crash mid-append: chop bytes off the final line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Lookup("cell/1"); ok {
		t.Error("truncated cell still resolvable")
	}
	if _, ok := r.Lookup("cell/0"); !ok {
		t.Error("intact cell lost")
	}
	if r.Discarded != 1 {
		t.Errorf("Discarded = %d, want 1", r.Discarded)
	}
	// Re-recording the lost cell and resuming again must heal fully.
	if err := r.Record("cell/1", testCell{Cell: 1}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	healed, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer healed.Close()
	if healed.Len() != 2 || healed.Discarded != 1 {
		t.Errorf("healed len=%d discarded=%d, want 2/1", healed.Len(), healed.Discarded)
	}
}

func TestLastOccurrenceWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("cell/0", testCell{Cell: 0, Cycles: 1})
	j.Record("cell/0", testCell{Cell: 0, Cycles: 2})
	j.Close()
	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	raw, _ := r.Lookup("cell/0")
	var c testCell
	json.Unmarshal(raw, &c)
	if c.Cycles != 2 {
		t.Errorf("cycles = %v, want the later record (2)", c.Cycles)
	}
}

func TestConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Record(fmt.Sprintf("cell/%d", i), testCell{Cell: i}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 16 || r.Discarded != 0 {
		t.Errorf("len=%d discarded=%d, want 16/0 (interleaved writes?)", r.Len(), r.Discarded)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	j, err := Create(filepath.Join(t.TempDir(), "j"), testMeta{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("", testCell{}); err == nil {
		t.Error("empty key accepted")
	}
}
