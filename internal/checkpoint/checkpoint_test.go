package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"rcoal/internal/faultinject"
)

type testMeta struct {
	Experiment string `json:"experiment"`
	Samples    int    `json:"samples"`
	Seed       int64  `json:"seed"`
}

type testCell struct {
	Cell   int     `json:"cell"`
	Cycles float64 `json:"cycles"`
}

func TestCreateRecordResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := testMeta{Experiment: "sweep", Samples: 30, Seed: 1}

	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Record(fmt.Sprintf("cell/%d", i), testCell{Cell: i, Cycles: 1.5 * float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 3 || r.Discarded != 0 {
		t.Fatalf("resumed len=%d discarded=%d, want 3/0", r.Len(), r.Discarded)
	}
	raw, ok := r.Lookup("cell/2")
	if !ok {
		t.Fatal("cell/2 missing after resume")
	}
	var c testCell
	if err := json.Unmarshal(raw, &c); err != nil {
		t.Fatal(err)
	}
	if c.Cell != 2 || c.Cycles != 3.0 {
		t.Errorf("cell/2 = %+v", c)
	}
	if _, ok := r.Lookup("cell/9"); ok {
		t.Error("phantom cell found")
	}
	// Appending after resume works.
	if err := r.Record("cell/3", testCell{Cell: 3}); err != nil {
		t.Fatal(err)
	}
	r2, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 4 {
		t.Errorf("after append+resume len = %d, want 4", r2.Len())
	}
}

func TestResumeCreatesMissingJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.journal")
	meta := testMeta{Experiment: "x"}
	j, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Errorf("fresh journal len = %d", j.Len())
	}
	if err := j.Record("a", testCell{}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// The meta line written on creation must satisfy a later resume.
	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Errorf("len = %d, want 1", r.Len())
	}
}

func TestResumeRejectsMetaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := Create(path, testMeta{Experiment: "sweep", Samples: 30})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, err = Resume(path, testMeta{Experiment: "sweep", Samples: 50})
	if err == nil {
		t.Fatal("resume with mismatched meta succeeded")
	}
	if !strings.Contains(err.Error(), "different experiment configuration") {
		t.Errorf("undiagnostic error: %v", err)
	}
}

func TestCorruptLinesDiscardedNotFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Record(fmt.Sprintf("cell/%d", i), testCell{Cell: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Corrupt the line for cell/1 (line 2: line 0 is meta).
	if err := faultinject.CorruptJournalLine(path, 2); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Discarded != 1 {
		t.Errorf("Discarded = %d, want 1", r.Discarded)
	}
	// Discards pins where and why: corrupted cell/1 is journal line 3
	// (meta line 1, cell/0 line 2 — CorruptJournalLine counts from 0).
	if len(r.Discards) != 1 {
		t.Fatalf("Discards = %+v, want one entry", r.Discards)
	}
	if d := r.Discards[0]; d.Line != 3 || d.Reason == "" {
		t.Errorf("Discard = %+v, want line 3 with a reason", d)
	}
	if _, ok := r.Lookup("cell/1"); ok {
		t.Error("corrupted cell still resolvable")
	}
	for _, k := range []string{"cell/0", "cell/2", "cell/3"} {
		if _, ok := r.Lookup(k); !ok {
			t.Errorf("healthy cell %s lost", k)
		}
	}
}

func TestTruncatedTailLineDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("cell/0", testCell{Cell: 0})
	j.Record("cell/1", testCell{Cell: 1})
	j.Close()

	// Simulate a crash mid-append: chop bytes off the final line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Lookup("cell/1"); ok {
		t.Error("truncated cell still resolvable")
	}
	if _, ok := r.Lookup("cell/0"); !ok {
		t.Error("intact cell lost")
	}
	if r.Discarded != 1 {
		t.Errorf("Discarded = %d, want 1", r.Discarded)
	}
	// Re-recording the lost cell and resuming again must heal fully.
	if err := r.Record("cell/1", testCell{Cell: 1}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	healed, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer healed.Close()
	if healed.Len() != 2 || healed.Discarded != 1 {
		t.Errorf("healed len=%d discarded=%d, want 2/1", healed.Len(), healed.Discarded)
	}
}

func TestLastOccurrenceWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("cell/0", testCell{Cell: 0, Cycles: 1})
	j.Record("cell/0", testCell{Cell: 0, Cycles: 2})
	j.Close()
	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	raw, _ := r.Lookup("cell/0")
	var c testCell
	json.Unmarshal(raw, &c)
	if c.Cycles != 2 {
		t.Errorf("cycles = %v, want the later record (2)", c.Cycles)
	}
}

func TestConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Record(fmt.Sprintf("cell/%d", i), testCell{Cell: i}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 16 || r.Discarded != 0 {
		t.Errorf("len=%d discarded=%d, want 16/0 (interleaved writes?)", r.Len(), r.Discarded)
	}
}

func TestLeaseRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	// Two leases out; one completes, one (cell/1) is in flight when the
	// coordinator "crashes".
	j.RecordLease(Lease{Key: "cell/0", Worker: "w1", Seq: 1, IssuedUnixNano: 100})
	j.RecordLease(Lease{Key: "cell/1", Worker: "w2", Seq: 1, IssuedUnixNano: 200})
	j.Record("cell/0", testCell{Cell: 0})
	j.Close()

	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	leases := r.Leases()
	if len(leases) != 1 {
		t.Fatalf("Leases() = %v, want only the incomplete cell/1", leases)
	}
	l, ok := leases["cell/1"]
	if !ok || l.Worker != "w2" || l.Seq != 1 || l.IssuedUnixNano != 200 {
		t.Errorf("cell/1 lease = %+v", l)
	}
	if _, ok := r.Lookup("cell/0"); !ok {
		t.Error("completed cell lost among lease lines")
	}
}

func TestLeaseReissueLastWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	// Lease times out and is re-issued to another worker with a higher
	// seq; the ledger must report the latest issue.
	j.RecordLease(Lease{Key: "cell/0", Worker: "w1", Seq: 1, IssuedUnixNano: 100})
	j.RecordLease(Lease{Key: "cell/0", Worker: "w2", Seq: 2, IssuedUnixNano: 900})
	j.Close()
	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	l := r.Leases()["cell/0"]
	if l.Worker != "w2" || l.Seq != 2 {
		t.Errorf("lease after re-issue = %+v, want w2/seq 2", l)
	}
}

func TestTornLeaseLineDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	j.RecordLease(Lease{Key: "cell/0", Worker: "w1", Seq: 1})
	j.RecordLease(Lease{Key: "cell/1", Worker: "w1", Seq: 1})
	j.Close()

	// Corrupt the first lease line (line 0 is meta).
	if err := faultinject.CorruptJournalLine(path, 1); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Discarded != 1 {
		t.Errorf("Discarded = %d, want 1", r.Discarded)
	}
	leases := r.Leases()
	if _, ok := leases["cell/0"]; ok {
		t.Error("torn lease line still resolvable")
	}
	if _, ok := leases["cell/1"]; !ok {
		t.Error("healthy lease lost")
	}

	// A torn *tail* lease line (crash mid-append) heals the same way.
	if err := r.RecordLease(Lease{Key: "cell/2", Worker: "w2", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	healed, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer healed.Close()
	if _, ok := healed.Leases()["cell/2"]; ok {
		t.Error("truncated tail lease still resolvable")
	}
	// Appending after the torn tail starts a fresh line.
	if err := healed.RecordLease(Lease{Key: "cell/3", Worker: "w2", Seq: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordOnceFirstWriterWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.journal")
	meta := testMeta{Experiment: "sweep"}
	j, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := j.RecordOnce("cell/0", testCell{Cell: 0, Cycles: 1})
	if err != nil || !rec {
		t.Fatalf("first RecordOnce = (%v, %v), want recorded", rec, err)
	}
	// The duplicate (a stale lease holder reporting late) must neither
	// record nor clobber.
	rec, err = j.RecordOnce("cell/0", testCell{Cell: 0, Cycles: 99})
	if err != nil || rec {
		t.Fatalf("duplicate RecordOnce = (%v, %v), want not recorded", rec, err)
	}
	j.Close()
	r, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	raw, _ := r.Lookup("cell/0")
	var c testCell
	json.Unmarshal(raw, &c)
	if c.Cycles != 1 {
		t.Errorf("cycles = %v, want the first write (1)", c.Cycles)
	}
	if r.Len() != 1 {
		t.Errorf("len = %d, want 1 (duplicate must not append)", r.Len())
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	j, err := Create(filepath.Join(t.TempDir(), "j"), testMeta{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("", testCell{}); err == nil {
		t.Error("empty key accepted")
	}
}
