// Package rng provides the deterministic random-number generation used
// to model the hardware randomness in the RCoal coalescing unit.
//
// The RSS and RTS defense mechanisms rely on per-kernel-launch random
// choices (subwarp sizes, thread-to-subwarp mapping) that the attacker
// cannot observe or replay. A fast, splittable xoshiro256** generator
// models that hardware RNG: the victim GPU and the attacker's
// simulation of the defense each derive independent streams, which is
// exactly the information asymmetry the defense exploits. Determinism
// (explicit seeds) keeps every experiment in the repository
// reproducible.
package rng

import "math"

// splitmix64 is the recommended seeding generator for xoshiro: it
// diffuses an arbitrary 64-bit seed into well-distributed state words.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** pseudo-random generator. The zero value is
// not valid; construct with New or Split.
type Source struct {
	s [4]uint64

	// cached spare normal deviate for NormFloat64 (Box-Muller pairs).
	haveSpare bool
	spare     float64
}

// New returns a Source seeded from a single 64-bit value.
func New(seed uint64) *Source {
	var src Source
	x := seed
	for i := range src.s {
		src.s[i] = splitmix64(&x)
	}
	// xoshiro requires a nonzero state; splitmix64 of any seed yields
	// one with overwhelming probability, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Split derives an independent child generator labeled by id. Victim
// hardware and attacker simulations split from different labels so
// their streams never coincide.
func (r *Source) Split(id uint64) *Source {
	x := r.Uint64() ^ (id * 0xd1342543de82ef95)
	return New(splitmix64(&x))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Bias is removed by rejection sampling on the top of the range.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	// Lemire-style rejection: reject the final partial block.
	threshold := -bound % bound // (2^64 - bound) mod bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of
// precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate via the Box-Muller
// transform.
func (r *Source) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.haveSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// Perm returns a uniform random permutation of [0, n) via Fisher-
// Yates. This is the RTS thread-to-subwarp shuffle primitive.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place, uniformly at random.
func (r *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
