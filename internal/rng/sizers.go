package rng

import "fmt"

// Composition draws a uniform random composition of n into k positive
// parts: every ordered size combination is equally likely and no part
// is empty, exactly the "skewed" subwarp-size distribution of RSS
// (Section IV-B, formalized in Section V-B3).
//
// Sampling is by stars and bars: choose k-1 distinct cut points among
// the n-1 gaps between n unit "stars"; the gaps between consecutive
// cuts are the parts. The marginal distribution of any single part is
// right-skewed (most parts small, occasionally one large part), which
// is what Figure 9 plots.
func (r *Source) Composition(n, k int) []int {
	if k <= 0 || n < k {
		panic(fmt.Sprintf("rng: Composition(%d,%d) infeasible", n, k))
	}
	if k == 1 {
		return []int{n}
	}
	// Floyd's algorithm samples k-1 distinct values from [1, n-1]
	// without building the full gap array.
	cuts := make(map[int]struct{}, k-1)
	for j := n - 1 - (k - 1) + 1; j <= n-1; j++ {
		v := 1 + r.Intn(j) // uniform in [1, j]
		if _, dup := cuts[v]; dup {
			v = j
		}
		cuts[v] = struct{}{}
	}
	marks := make([]bool, n) // marks[i] true if a cut sits after star i
	for c := range cuts {
		marks[c] = true
	}
	parts := make([]int, 0, k)
	prev := 0
	for i := 1; i < n; i++ {
		if marks[i] {
			parts = append(parts, i-prev)
			prev = i
		}
	}
	parts = append(parts, n-prev)
	return parts
}

// NormalComposition draws subwarp sizes from a discretized normal
// distribution centered on n/k (the FSS size) with the given standard
// deviation, then repairs the vector so that all parts are >= 1 and
// sum to n. This reproduces the "normal" size distribution the paper
// compares against in Figure 9; its security and performance are close
// to FSS, which is why skewed sampling (Composition) is the RSS
// default.
func (r *Source) NormalComposition(n, k int, sigma float64) []int {
	if k <= 0 || n < k {
		panic(fmt.Sprintf("rng: NormalComposition(%d,%d) infeasible", n, k))
	}
	mean := float64(n) / float64(k)
	parts := make([]int, k)
	total := 0
	for i := range parts {
		v := int(mean + sigma*r.NormFloat64() + 0.5)
		if v < 1 {
			v = 1
		}
		if v > n-k+1 {
			v = n - k + 1
		}
		parts[i] = v
		total += v
	}
	// Repair to the exact sum by incrementing/decrementing random
	// parts, keeping every part >= 1.
	for total < n {
		parts[r.Intn(k)]++
		total++
	}
	for total > n {
		i := r.Intn(k)
		if parts[i] > 1 {
			parts[i]--
			total--
		}
	}
	return parts
}
