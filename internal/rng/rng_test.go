package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collided %d/1000 times", same)
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ≈%v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	for i := 0; i < 20000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 20000; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(17)
	const n, draws = 4, 40000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first elem %d: %d, want ≈%v", i, c, want)
		}
	}
}

func TestCompositionInvariants(t *testing.T) {
	r := New(23)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 1
		k := int(kRaw)%n + 1
		parts := r.Composition(n, k)
		if len(parts) != k {
			return false
		}
		sum := 0
		for _, p := range parts {
			if p < 1 {
				return false
			}
			sum += p
		}
		return sum == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompositionUniformOverAllCompositions(t *testing.T) {
	// For n=5, k=2 there are C(4,1)=4 compositions: (1,4),(2,3),(3,2),(4,1).
	r := New(31)
	counts := map[[2]int]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		p := r.Composition(5, 2)
		counts[[2]int{p[0], p[1]}]++
	}
	if len(counts) != 4 {
		t.Fatalf("saw %d distinct compositions, want 4: %v", len(counts), counts)
	}
	want := float64(draws) / 4
	for comp, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("composition %v: %d draws, want ≈%v", comp, c, want)
		}
	}
}

func TestCompositionSkewness(t *testing.T) {
	// The marginal of a uniform composition of 32 into 4 parts is
	// right-skewed: size 1 must be the most frequent single size,
	// more frequent than the FSS mean size 8 (Figure 9's point).
	r := New(37)
	counts := make([]int, 33)
	for i := 0; i < 20000; i++ {
		for _, p := range r.Composition(32, 4) {
			counts[p]++
		}
	}
	if counts[1] <= counts[8] {
		t.Errorf("skewed marginal: P(size=1)=%d should exceed P(size=8)=%d", counts[1], counts[8])
	}
	for s := 2; s <= 29; s++ {
		if counts[s] > counts[1] {
			t.Errorf("size %d more frequent (%d) than size 1 (%d)", s, counts[s], counts[1])
		}
	}
}

func TestCompositionEdge(t *testing.T) {
	r := New(41)
	if p := r.Composition(32, 1); len(p) != 1 || p[0] != 32 {
		t.Errorf("Composition(32,1) = %v", p)
	}
	p := r.Composition(4, 4)
	for _, v := range p {
		if v != 1 {
			t.Errorf("Composition(4,4) = %v, want all ones", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Composition(2,3) did not panic")
		}
	}()
	r.Composition(2, 3)
}

func TestNormalCompositionInvariants(t *testing.T) {
	r := New(43)
	for i := 0; i < 2000; i++ {
		parts := r.NormalComposition(32, 4, 2.0)
		sum := 0
		for _, p := range parts {
			if p < 1 {
				t.Fatalf("empty subwarp in %v", parts)
			}
			sum += p
		}
		if sum != 32 {
			t.Fatalf("NormalComposition sums to %d: %v", sum, parts)
		}
	}
}

func TestNormalCompositionCentersOnFSSMean(t *testing.T) {
	// Figure 9: the normal distribution's mode is near 32/M.
	r := New(47)
	counts := make([]int, 33)
	for i := 0; i < 20000; i++ {
		for _, p := range r.NormalComposition(32, 4, 1.5) {
			counts[p]++
		}
	}
	best := 1
	for s := 2; s <= 32; s++ {
		if counts[s] > counts[best] {
			best = s
		}
	}
	if best < 7 || best > 9 {
		t.Errorf("normal-sized mode at %d, want ≈8", best)
	}
}
