package ringbuf

import (
	"testing"

	"rcoal/internal/rng"
)

func TestFIFOOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		if r.Peek() != i {
			t.Fatalf("peek = %d, want %d", r.Peek(), i)
		}
		if got := r.Pop(); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d after draining, want 0", r.Len())
	}
}

func TestWrapAround(t *testing.T) {
	var r Ring[int]
	// Interleave pushes and pops so head walks around the buffer many
	// times; order must survive every wrap.
	next, expect := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 3; i++ {
			if got := r.Pop(); got != expect {
				t.Fatalf("round %d: pop = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
}

// TestSteadyStateCapacityBounded is the regression test for the
// `q = q[1:]` inject-queue drain the ring replaced: under steady
// push/pop with bounded depth, the backing array must not creep.
func TestSteadyStateCapacityBounded(t *testing.T) {
	var r Ring[*int]
	v := 7
	for i := 0; i < 100000; i++ {
		r.Push(&v)
		r.Push(&v)
		r.Pop()
		r.Pop()
	}
	if r.Cap() > 8 {
		t.Fatalf("capacity %d after 100k steady-state ops, want <= 8", r.Cap())
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	var r Ring[int]
	// Warm to steady-state depth.
	for i := 0; i < 4; i++ {
		r.Push(i)
	}
	for r.Len() > 0 {
		r.Pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 4; i++ {
			r.Push(i)
		}
		for r.Len() > 0 {
			r.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocates %v/op, want 0", allocs)
	}
}

func TestResetKeepsCapacityDropsContents(t *testing.T) {
	var r Ring[*int]
	v := 1
	for i := 0; i < 20; i++ {
		r.Push(&v)
	}
	capBefore := r.Cap()
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("len = %d after Reset, want 0", r.Len())
	}
	if r.Cap() != capBefore {
		t.Fatalf("cap = %d after Reset, want %d", r.Cap(), capBefore)
	}
	// Every slot must have been zeroed (no pinned references).
	for i, p := range r.buf {
		if p != nil {
			t.Fatalf("slot %d not zeroed after Reset", i)
		}
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pop from empty ring did not panic")
		}
	}()
	var r Ring[int]
	r.Pop()
}

// TestSnapshotRestoreProperty drives a ring through random operation
// sequences, snapshots it, keeps mutating, then restores — the
// restored ring's drain order must match the snapshot, and restoring
// into a fresh ring must behave identically (the property the
// simulator's prefix forking relies on).
func TestSnapshotRestoreProperty(t *testing.T) {
	rnd := rng.New(31)
	for trial := 0; trial < 50; trial++ {
		var r Ring[int]
		next := 0
		for op := 0; op < 5+rnd.Intn(40); op++ {
			if r.Len() > 0 && rnd.Intn(3) == 0 {
				r.Pop()
			} else {
				r.Push(next)
				next++
			}
		}
		want := r.Snapshot(nil)
		if len(want) != r.Len() {
			t.Fatalf("trial %d: snapshot has %d elements, ring has %d", trial, len(want), r.Len())
		}

		// Mutate past the snapshot.
		for op := 0; op < rnd.Intn(20); op++ {
			if r.Len() > 0 && rnd.Intn(2) == 0 {
				r.Pop()
			} else {
				r.Push(next)
				next++
			}
		}

		drain := func(r *Ring[int]) []int {
			out := []int{}
			for r.Len() > 0 {
				out = append(out, r.Pop())
			}
			return out
		}
		r.Restore(want)
		if got := drain(&r); !slicesEqual(got, want) {
			t.Fatalf("trial %d: same-ring restore drained %v, want %v", trial, got, want)
		}
		var fresh Ring[int]
		fresh.Restore(want)
		if got := drain(&fresh); !slicesEqual(got, want) {
			t.Fatalf("trial %d: fresh-ring restore drained %v, want %v", trial, got, want)
		}
	}
}

func slicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotDoesNotMutate pins that Snapshot is read-only: the ring
// drains identically whether or not it was snapshotted.
func TestSnapshotDoesNotMutate(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 13; i++ {
		r.Push(i)
	}
	for i := 0; i < 5; i++ {
		r.Pop() // wrap the head
	}
	for i := 13; i < 20; i++ {
		r.Push(i)
	}
	snap := r.Snapshot(nil)
	for i, want := 0, 5; r.Len() > 0; i, want = i+1, want+1 {
		if got := r.Pop(); got != want || got != snap[i] {
			t.Fatalf("pop %d = %d, want %d (snap %d)", i, got, want, snap[i])
		}
	}
}
