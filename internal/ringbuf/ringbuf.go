// Package ringbuf provides a growable FIFO ring buffer used on the
// simulator's hot paths (the LD/ST inject queue and the crossbar port
// queues). Unlike the `q = q[1:]` idiom, popping never abandons the
// front of the backing array, so a queue that is pushed and popped in
// steady state keeps a small, bounded capacity and performs zero
// allocations once warmed.
package ringbuf

// Ring is a FIFO queue over a circular buffer. The zero value is an
// empty ring ready for use.
type Ring[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // number of live elements
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the current capacity of the backing buffer.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Push appends v at the tail, growing the buffer if full.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	tail := r.head + r.n
	if tail >= len(r.buf) {
		tail -= len(r.buf)
	}
	r.buf[tail] = v
	r.n++
}

// Pop removes and returns the head element. It panics on an empty ring;
// callers gate on Len.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("ringbuf: pop from empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // drop the reference for GC
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// Peek returns the head element without removing it. It panics on an
// empty ring.
func (r *Ring[T]) Peek() T {
	if r.n == 0 {
		panic("ringbuf: peek into empty ring")
	}
	return r.buf[r.head]
}

// Reset empties the ring, zeroing dropped slots so stale references do
// not pin memory, while keeping the backing buffer for reuse.
func (r *Ring[T]) Reset() {
	var zero T
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		r.buf[j] = zero
	}
	r.head, r.n = 0, 0
}

// Snapshot appends the ring's elements to dst in FIFO order (head
// first) and returns the extended slice. The ring itself is
// unchanged. Together with Restore this is the ring's serialization
// primitive for the simulator's copy-on-write prefix snapshots.
func (r *Ring[T]) Snapshot(dst []T) []T {
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		dst = append(dst, r.buf[j])
	}
	return dst
}

// Restore replaces the ring's contents with src in FIFO order (src[0]
// becomes the head). The backing buffer is reused when large enough;
// src is copied, never retained.
func (r *Ring[T]) Restore(src []T) {
	r.Reset()
	for _, v := range src {
		r.Push(v)
	}
}

// grow doubles the capacity (starting at 8), unrolling the circular
// contents into the front of the new buffer.
func (r *Ring[T]) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]T, newCap)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		buf[i] = r.buf[j]
	}
	r.buf = buf
	r.head = 0
}
