package report

import (
	"math"
	"strings"
	"testing"

	"rcoal/internal/metrics"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"M", "rho"}}
	tb.AddRow(1, 1.0)
	tb.AddRow(16, 0.034)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(lines[1], "rho") || !strings.Contains(lines[2], "---") {
		t.Error("missing header or separator")
	}
	// All data lines equal length (alignment).
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows unaligned: %q vs %q", lines[3], lines[4])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1.23456, "1.235"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{math.NaN(), "-"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v, 3); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestBarScaling(t *testing.T) {
	full := Bar("x", 10, 10, 20)
	if !strings.Contains(full, strings.Repeat("#", 20)) {
		t.Errorf("full bar wrong: %q", full)
	}
	half := Bar("x", 5, 10, 20)
	if !strings.Contains(half, strings.Repeat("#", 10)+" ") {
		t.Errorf("half bar wrong: %q", half)
	}
	empty := Bar("x", 0, 10, 20)
	if strings.Contains(empty, "#") {
		t.Errorf("empty bar has fill: %q", empty)
	}
	// Degenerate inputs must not panic or overflow.
	_ = Bar("x", 50, 10, 20)
	_ = Bar("x", math.Inf(1), 10, 20)
	_ = Bar("x", 1, 0, 0)
}

func TestBarChart(t *testing.T) {
	out := BarChart("t", []string{"a", "b"}, []float64{1, 2}, 10)
	if !strings.HasPrefix(out, "t\n") || strings.Count(out, "\n") != 3 {
		t.Errorf("chart:\n%s", out)
	}
	// Infinite values render without scaling breakage.
	out = BarChart("", []string{"a"}, []float64{math.Inf(1)}, 10)
	if !strings.Contains(out, "inf") {
		t.Errorf("inf chart: %s", out)
	}
}

func TestHistogramSkipsEmpty(t *testing.T) {
	out := Histogram("h", []int{0, 5, 0, 2}, 10)
	if strings.Contains(out, "size  0") || strings.Contains(out, "size  2") {
		t.Errorf("empty buckets rendered:\n%s", out)
	}
	if !strings.Contains(out, "size  1") || !strings.Contains(out, "size  3") {
		t.Errorf("non-empty buckets missing:\n%s", out)
	}
}

func TestMetricsHistogram(t *testing.T) {
	h := metrics.HistogramValue{
		Bounds: []int64{1, 2, 4, 8},
		Counts: []uint64{10, 0, 5, 2, 1}, // 1, 2, 3-4, 5-8, >8
		Count:  18, Sum: 40, Min: 1, Max: 12, Mean: 40.0 / 18,
	}
	out := MetricsHistogram("tx per instr", h, 20)
	if !strings.HasPrefix(out, "tx per instr\n") {
		t.Errorf("missing title:\n%s", out)
	}
	for _, want := range []string{"1 ", "3-4", "5-8", "> 8", "n=18", "mean=2.22", "min=1", "max=12"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The empty bucket (value 2) is skipped.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "2 ") {
			t.Errorf("empty bucket rendered: %q", line)
		}
	}
}
