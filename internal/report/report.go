// Package report renders experiment results as aligned ASCII tables
// and bar charts for the command-line tools, so every figure and table
// of the paper has a human-readable terminal rendition.
package report

import (
	"fmt"
	"math"
	"strings"

	"rcoal/internal/metrics"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v, 3)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		line(sep)
	}
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// FormatFloat formats v with the given precision, rendering infinities
// as the paper's ∞ symbol and NaN as "-".
func FormatFloat(v float64, prec int) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "-"
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// Bar renders one labeled horizontal bar scaled to max.
func Bar(label string, value, max float64, width int) string {
	if width <= 0 {
		width = 40
	}
	n := 0
	if max > 0 && !math.IsNaN(value) && !math.IsInf(value, 0) {
		n = int(value / max * float64(width))
		if n > width {
			n = width
		}
		if n < 0 {
			n = 0
		}
	}
	return fmt.Sprintf("%-18s |%s%s| %s", label,
		strings.Repeat("#", n), strings.Repeat(" ", width-n), FormatFloat(value, 3))
}

// BarChart renders one bar per (label, value) pair, scaled to the
// maximum finite value.
func BarChart(title string, labels []string, values []float64, width int) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	max := 0.0
	for _, v := range values {
		if !math.IsInf(v, 0) && !math.IsNaN(v) && v > max {
			max = v
		}
	}
	for i, l := range labels {
		b.WriteString(Bar(l, values[i], max, width))
		b.WriteByte('\n')
	}
	return b.String()
}

// MetricsHistogram renders a simulator metrics histogram snapshot:
// one bar per non-empty bucket labeled with its inclusive value range,
// followed by a count/mean/min/max summary line.
func MetricsHistogram(title string, h metrics.HistogramValue, width int) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	var max uint64
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	lo := int64(0)
	for i, c := range h.Counts {
		var label string
		switch {
		case i == len(h.Bounds): // implicit overflow bucket
			label = fmt.Sprintf("> %d", h.Bounds[len(h.Bounds)-1])
		case lo == h.Bounds[i]:
			label = fmt.Sprintf("%d", lo)
		default:
			label = fmt.Sprintf("%d-%d", lo, h.Bounds[i])
		}
		if i < len(h.Bounds) {
			lo = h.Bounds[i] + 1
		}
		if c == 0 {
			continue
		}
		b.WriteString(Bar(label, float64(c), float64(max), width))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  n=%d mean=%s min=%d max=%d\n", h.Count, FormatFloat(h.Mean, 2), h.Min, h.Max)
	return b.String()
}

// Histogram renders integer-bucket counts (used for the Figure 9
// subwarp-size distributions).
func Histogram(title string, buckets []int, width int) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	max := 0
	for _, c := range buckets {
		if c > max {
			max = c
		}
	}
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		b.WriteString(Bar(fmt.Sprintf("size %2d", i), float64(c), float64(max), width))
		b.WriteByte('\n')
	}
	return b.String()
}
