package rcoal

// The benchmark harness regenerates every table and figure of the
// paper (DESIGN.md §3 maps each bench to its artifact). Paper-artifact
// benches run the corresponding experiment at a reduced sample count
// so `go test -bench=.` completes in minutes; the rcoal-experiments
// CLI runs them at full scale. Micro-benchmarks below measure the
// building blocks (coalescing, plan generation, AES, the simulator,
// the attack inner loop, the analytical model).

import (
	"testing"

	"rcoal/internal/aes"
	"rcoal/internal/attack"
	"rcoal/internal/core"
	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/rng"
	"rcoal/internal/theory"
)

func runExperimentBench(b *testing.B, id string, samples int) {
	b.Helper()
	o := DefaultExperimentOptions()
	o.Samples = samples
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment(id, o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One bench per paper artifact -------------------------------------------

func BenchmarkTable1ConfigValidation(b *testing.B) {
	cfg := DefaultGPUConfig()
	for i := 0; i < b.N; i++ {
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5TimingRelationship(b *testing.B)  { runExperimentBench(b, "fig5", 20) }
func BenchmarkFig6BaselineAttack(b *testing.B)      { runExperimentBench(b, "fig6", 20) }
func BenchmarkFig7FSSPerformance(b *testing.B)      { runExperimentBench(b, "fig7", 10) }
func BenchmarkFig8FSSAttack(b *testing.B)           { runExperimentBench(b, "fig8", 10) }
func BenchmarkFig9RSSDistributions(b *testing.B)    { runExperimentBench(b, "fig9", 2) }
func BenchmarkFig10WorkedExamples(b *testing.B)     { runExperimentBench(b, "fig10", 2) }
func BenchmarkFig12FSSRTSAttack(b *testing.B)       { runExperimentBench(b, "fig12", 10) }
func BenchmarkFig13RSSAttack(b *testing.B)          { runExperimentBench(b, "fig13", 10) }
func BenchmarkFig14RSSRTSAttack(b *testing.B)       { runExperimentBench(b, "fig14", 10) }
func BenchmarkFig15SecurityComparison(b *testing.B) { runExperimentBench(b, "fig15", 8) }
func BenchmarkFig16Performance(b *testing.B)        { runExperimentBench(b, "fig16", 8) }
func BenchmarkFig17RCoalScore(b *testing.B)         { runExperimentBench(b, "fig17", 8) }
func BenchmarkFig18CaseStudy1024(b *testing.B)      { runExperimentBench(b, "fig18", 3) }
func BenchmarkDisableCoalescing(b *testing.B)       { runExperimentBench(b, "nocoal", 3) }
func BenchmarkTable2Theory(b *testing.B)            { runExperimentBench(b, "table2", 2) }

// Extension and ablation benches (paper §VII future work + design
// choices called out in DESIGN.md).

func BenchmarkExtSelectiveRCoal(b *testing.B)    { runExperimentBench(b, "ext-selective", 10) }
func BenchmarkExtMemoryHierarchy(b *testing.B)   { runExperimentBench(b, "ext-hierarchy", 10) }
func BenchmarkExtInferSubwarps(b *testing.B)     { runExperimentBench(b, "ext-inferm", 8) }
func BenchmarkExtSchedulerAblation(b *testing.B) { runExperimentBench(b, "ext-scheduler", 6) }
func BenchmarkExtPlanGranularity(b *testing.B)   { runExperimentBench(b, "ext-planperwarp", 10) }
func BenchmarkExtRSSDistribution(b *testing.B)   { runExperimentBench(b, "ext-rssdist", 10) }
func BenchmarkExtOtherModes(b *testing.B)        { runExperimentBench(b, "ext-modes", 10) }
func BenchmarkExtWorkloadPatterns(b *testing.B)  { runExperimentBench(b, "ext-workloads", 30) }
func BenchmarkExtEquation4(b *testing.B)         { runExperimentBench(b, "ext-eq4", 50) }
func BenchmarkExtRealisticAttacker(b *testing.B) { runExperimentBench(b, "ext-realistic", 30) }
func BenchmarkExtSensitivity(b *testing.B)       { runExperimentBench(b, "ext-sensitivity", 5) }
func BenchmarkExtEnergyModel(b *testing.B)       { runExperimentBench(b, "ext-energy", 30) }
func BenchmarkExtNoiseStudy(b *testing.B)        { runExperimentBench(b, "ext-noise", 20) }
func BenchmarkExtSharedMemory(b *testing.B)      { runExperimentBench(b, "ext-sharedmem", 30) }

// --- Accelerator benchmarks ---------------------------------------------------

// The X / XVanilla pairs below measure the same workload with the
// exact accelerators on and off; rcoal-benchjson -join-variant Vanilla
// turns each pair into a before/after entry with a speedup, and CI
// gates on it with -min-speedup (see Makefile `bench-json`). Workers
// is pinned to 1 so the join measures the accelerators, not the pool.

// benchSelectiveSweep runs the selective-RCoal mechanism sweep — the
// prefix-fork target workload — once per iteration. A fresh cache per
// iteration mirrors one CLI -accel invocation.
func benchSelectiveSweep(b *testing.B, accel bool) {
	b.Helper()
	o := DefaultExperimentOptions()
	o.Samples = 6
	o.Workers = 1
	for i := 0; i < b.N; i++ {
		if accel {
			o.ForkPrefix = true
			o.TraceCache = NewTraceCache()
		}
		if _, err := RunExperiment("ext-selective-sweep", o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectiveMechanismSweep(b *testing.B)        { benchSelectiveSweep(b, true) }
func BenchmarkSelectiveMechanismSweepVanilla(b *testing.B) { benchSelectiveSweep(b, false) }

// benchTraceCachedCollect measures the cache's real workload: two
// grid cells (servers under different mechanisms) replaying the same
// plaintext stream, so the second cell's builds all hit. The vanilla
// variant rebuilds every trace; CI gates the pair at "not slower"
// (the first cell's misses pay the keying overhead).
func benchTraceCachedCollect(b *testing.B, cached bool) {
	b.Helper()
	servers := make([]*Server, 2)
	for i, policy := range []Mechanism{FSS(4), RSSRTS(4)} {
		cfg := DefaultGPUConfig()
		cfg.Defense = policy
		srv, err := NewServer(cfg, []byte("RCoal eval key 1"))
		if err != nil {
			b.Fatal(err)
		}
		servers[i] = srv
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cached {
			tc := NewTraceCache()
			for _, srv := range servers {
				srv.SetTraceCache(tc)
			}
		}
		for _, srv := range servers {
			if _, err := srv.Collect(4, 32, uint64(i+1)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTraceCachedCollect(b *testing.B)        { benchTraceCachedCollect(b, true) }
func BenchmarkTraceCachedCollectVanilla(b *testing.B) { benchTraceCachedCollect(b, false) }

// --- Micro-benchmarks: building blocks ---------------------------------------

func BenchmarkCoalesceWholeWarp(b *testing.B) {
	plan := core.Baseline().NewPlan(rng.New(1))
	src := rng.New(2)
	blocks := make([]uint64, 32)
	for i := range blocks {
		blocks[i] = uint64(src.Intn(16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan.CountCoalesced(blocks, nil) == 0 {
			b.Fatal("no transactions")
		}
	}
}

func BenchmarkCoalesceSmallBlocksRSSRTS(b *testing.B) {
	plan := core.RSSRTS(8).NewPlan(rng.New(1))
	src := rng.New(2)
	blocks := make([]int, 32)
	for i := range blocks {
		blocks[i] = src.Intn(16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan.CountSmallBlocks(blocks) == 0 {
			b.Fatal("no transactions")
		}
	}
}

func BenchmarkPlanGeneration(b *testing.B) {
	for _, cfg := range []core.Config{core.FSS(8), core.FSSRTS(8), core.RSS(8), core.RSSRTS(8)} {
		b.Run(cfg.Name(), func(b *testing.B) {
			r := rng.New(7)
			for i := 0; i < b.N; i++ {
				if cfg.NewPlan(r).NumSubwarps() != 8 {
					b.Fatal("bad plan")
				}
			}
		})
	}
}

func BenchmarkAESEncryptBlock(b *testing.B) {
	c, err := aes.NewCipher([]byte("0123456789abcdef"))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}

func BenchmarkAESTraceEncrypt(b *testing.B) {
	c, err := aes.NewCipher([]byte("0123456789abcdef"))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		_, trace := c.TraceEncrypt(buf)
		if len(trace) != 10 {
			b.Fatal("bad trace")
		}
	}
}

func BenchmarkSimulatorEncrypt32Lines(b *testing.B) {
	srv, err := NewServer(DefaultGPUConfig(), []byte("benchmark key!!!"))
	if err != nil {
		b.Fatal(err)
	}
	lines := RandomPlaintext(1, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Encrypt(lines, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorEncrypt1024Lines(b *testing.B) {
	srv, err := NewServer(DefaultGPUConfig(), []byte("benchmark key!!!"))
	if err != nil {
		b.Fatal(err)
	}
	lines := RandomPlaintext(1, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Encrypt(lines, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttackEstimateSample(b *testing.B) {
	plan := core.RSSRTS(8).NewPlan(rng.New(1))
	lines := kernels.RandomPlaintext(rng.New(2), 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if attack.EstimateSample(plan, lines, i%16, byte(i)) < 8 {
			b.Fatal("implausible estimate")
		}
	}
}

func BenchmarkAttackRecoverByte(b *testing.B) {
	srv, err := NewServer(DefaultGPUConfig(), []byte("benchmark key!!!"))
	if err != nil {
		b.Fatal(err)
	}
	ds, err := srv.Collect(30, 32, 5)
	if err != nil {
		b.Fatal(err)
	}
	cts := make([][]kernels.Line, len(ds.Samples))
	for i, s := range ds.Samples {
		cts[i] = s.Ciphertexts
	}
	times := ds.LastRoundTimes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atk := attack.Baseline(uint64(i))
		if _, err := atk.RecoverByte(cts, times, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheoryRhoFSSRTS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		md, _ := theory.NewModel(32, 16)
		if rho := md.RhoFSSRTS(16); rho < 0.02 || rho > 0.05 {
			b.Fatalf("rho = %v", rho)
		}
	}
}

func BenchmarkGPUCycleThroughput(b *testing.B) {
	// Cycles simulated per second: the simulator's headline speed.
	g, err := gpusim.New(gpusim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	c, err := aes.NewCipher([]byte("benchmark key!!!"))
	if err != nil {
		b.Fatal(err)
	}
	kern, _, err := kernels.Build(c, kernels.RandomPlaintext(rng.New(3), 32))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := g.Run(kern, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

func BenchmarkGPUCycleThroughputMetricsOn(b *testing.B) {
	// Companion to BenchmarkGPUCycleThroughput with the metrics layer
	// installed: the delta between the two is the observability
	// overhead, which the PR budget caps at a few percent.
	cfg := gpusim.DefaultConfig()
	cfg.Metrics = gpusim.NewMetrics()
	g, err := gpusim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c, err := aes.NewCipher([]byte("benchmark key!!!"))
	if err != nil {
		b.Fatal(err)
	}
	kern, _, err := kernels.Build(c, kernels.RandomPlaintext(rng.New(3), 32))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := g.Run(kern, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}
