package rcoal

import (
	"testing"

	"rcoal/internal/runner"
)

func FuzzParseMechanism(f *testing.F) {
	for _, seed := range []string{
		"baseline", "fss:4", "rss+rts:8", "rss-normal:2", "rss-normal:4:2.5",
		"delay", "delay:128", "shuffle", "nocoal", "no-coalescing",
		"", "fss:", "x:y", "fss:999999999999999999999", "DELAY:0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := ParseMechanism(spec)
		if err != nil {
			return // rejected input; fine
		}
		// Accepted specs must produce valid, nameable mechanisms...
		if err := m.ValidateFor(0); err != nil {
			t.Fatalf("ParseMechanism(%q) returned invalid mechanism: %v", spec, err)
		}
		if m.Name() == "" || m.Spec() == "" {
			t.Fatalf("ParseMechanism(%q) returned unnamed mechanism", spec)
		}
		// ...whose canonical spec round-trips: parsing Spec() again must
		// reconstruct the same mechanism (same spec, same display name).
		again, err := ParseMechanism(m.Spec())
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", m.Spec(), spec, err)
		}
		if again.Spec() != m.Spec() || again.Name() != m.Name() {
			t.Fatalf("round-trip drift: %q -> (%q, %q) -> (%q, %q)",
				spec, m.Spec(), m.Name(), again.Spec(), again.Name())
		}
	})
}

// FuzzRunnerSeedSplit checks the injectivity contract of the parallel
// runner's seed derivation: distinct label tuples must yield distinct
// per-cell seeds, and a tuple's seed must depend on the master seed,
// on every label, and on tuple boundaries (("ab") vs ("a","b")).
func FuzzRunnerSeedSplit(f *testing.F) {
	f.Add(uint64(42), "sweep", 4, "fss")
	f.Add(uint64(42), "sweep", 4, "rss")
	f.Add(uint64(0), "", 0, "")
	f.Add(uint64(1), "a", 1, "b")
	f.Fuzz(func(t *testing.T, master uint64, s1 string, n int, s2 string) {
		base := runner.CellSeed(master, s1, n, s2)
		if again := runner.CellSeed(master, s1, n, s2); again != base {
			t.Fatalf("CellSeed not deterministic: %#x vs %#x", base, again)
		}
		// Any single-component perturbation must change the seed.
		if got := runner.CellSeed(master^1, s1, n, s2); got == base {
			t.Errorf("seed ignores master: %#x", base)
		}
		if got := runner.CellSeed(master, s1+"x", n, s2); got == base {
			t.Errorf("seed ignores label 1: %#x", base)
		}
		if got := runner.CellSeed(master, s1, n+1, s2); got == base {
			t.Errorf("seed ignores label 2: %#x", base)
		}
		if got := runner.CellSeed(master, s1, n, s2+"x"); got == base {
			t.Errorf("seed ignores label 3: %#x", base)
		}
		// Tuple boundaries matter: folding s1 and s2 into one label or
		// dropping one must not alias (length prefixes guarantee this).
		if got := runner.CellSeed(master, s1+s2, n); got == base {
			t.Errorf("tuple boundary alias: (%q,%d,%q) vs (%q,%d)", s1, n, s2, s1+s2, n)
		}
		if got := runner.CellSeed(master, s1, n); got == base {
			t.Errorf("dropped label aliases: (%q,%d,%q) vs (%q,%d)", s1, n, s2, s1, n)
		}
	})
}
