package rcoal

import (
	"testing"

	"rcoal/internal/runner"
)

func FuzzParseMechanism(f *testing.F) {
	for _, seed := range []string{"baseline", "fss:4", "rss+rts:8", "rss-normal:2", "", "fss:", "x:y", "fss:999999999999999999999"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseMechanism(spec)
		if err != nil {
			return // rejected input; fine
		}
		// Accepted specs must produce valid, plannable configurations.
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseMechanism(%q) returned invalid config: %v", spec, err)
		}
	})
}

// FuzzRunnerSeedSplit checks the injectivity contract of the parallel
// runner's seed derivation: distinct label tuples must yield distinct
// per-cell seeds, and a tuple's seed must depend on the master seed,
// on every label, and on tuple boundaries (("ab") vs ("a","b")).
func FuzzRunnerSeedSplit(f *testing.F) {
	f.Add(uint64(42), "sweep", 4, "fss")
	f.Add(uint64(42), "sweep", 4, "rss")
	f.Add(uint64(0), "", 0, "")
	f.Add(uint64(1), "a", 1, "b")
	f.Fuzz(func(t *testing.T, master uint64, s1 string, n int, s2 string) {
		base := runner.CellSeed(master, s1, n, s2)
		if again := runner.CellSeed(master, s1, n, s2); again != base {
			t.Fatalf("CellSeed not deterministic: %#x vs %#x", base, again)
		}
		// Any single-component perturbation must change the seed.
		if got := runner.CellSeed(master^1, s1, n, s2); got == base {
			t.Errorf("seed ignores master: %#x", base)
		}
		if got := runner.CellSeed(master, s1+"x", n, s2); got == base {
			t.Errorf("seed ignores label 1: %#x", base)
		}
		if got := runner.CellSeed(master, s1, n+1, s2); got == base {
			t.Errorf("seed ignores label 2: %#x", base)
		}
		if got := runner.CellSeed(master, s1, n, s2+"x"); got == base {
			t.Errorf("seed ignores label 3: %#x", base)
		}
		// Tuple boundaries matter: folding s1 and s2 into one label or
		// dropping one must not alias (length prefixes guarantee this).
		if got := runner.CellSeed(master, s1+s2, n); got == base {
			t.Errorf("tuple boundary alias: (%q,%d,%q) vs (%q,%d)", s1, n, s2, s1+s2, n)
		}
		if got := runner.CellSeed(master, s1, n); got == base {
			t.Errorf("dropped label aliases: (%q,%d,%q) vs (%q,%d)", s1, n, s2, s1, n)
		}
	})
}
