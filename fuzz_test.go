package rcoal

import "testing"

func FuzzParseMechanism(f *testing.F) {
	for _, seed := range []string{"baseline", "fss:4", "rss+rts:8", "rss-normal:2", "", "fss:", "x:y", "fss:999999999999999999999"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseMechanism(spec)
		if err != nil {
			return // rejected input; fine
		}
		// Accepted specs must produce valid, plannable configurations.
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseMechanism(%q) returned invalid config: %v", spec, err)
		}
	})
}
