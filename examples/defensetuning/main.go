// Defense tuning: a hardware engineer's walk through the RCoal_Score
// metric (Equation 7). For each mechanism and subwarp count, measure
// security (average attack correlation → S = 1/ρ²) and performance
// (execution time normalized to the baseline) on the simulator, then
// rank configurations for a security-oriented design (a=1, b=1) and a
// performance-oriented design (a=1, b=20), reproducing the Figure 17
// methodology.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"rcoal"
)

const (
	samples = 60
	lines   = 32
)

type point struct {
	policy   rcoal.Mechanism
	normTime float64
	avgCorr  float64
}

func main() {
	key := []byte("tuning demo key!")

	// Baseline reference time.
	baseTime := measureTime(rcoal.Baseline(), key)

	var points []point
	for _, m := range []int{2, 4, 8, 16} {
		for _, mk := range []func(int) rcoal.Mechanism{rcoal.FSS, rcoal.FSSRTS, rcoal.RSS, rcoal.RSSRTS} {
			policy := mk(m)
			pt := point{policy: policy}
			pt.normTime, pt.avgCorr = measure(policy, key, baseTime)
			points = append(points, pt)
			fmt.Printf("measured %-12s  time %.2fx  attack corr %+.3f\n",
				policy.Name(), pt.normTime, pt.avgCorr)
		}
	}

	for _, design := range []struct {
		title string
		a, b  float64
	}{
		{"security-oriented (a=1, b=1)", 1, 1},
		{"performance-oriented (a=1, b=20)", 1, 20},
	} {
		sort.Slice(points, func(i, j int) bool {
			return score(points[i], design.a, design.b) > score(points[j], design.a, design.b)
		})
		fmt.Printf("\nTop configurations for a %s design:\n", design.title)
		for i := 0; i < 3; i++ {
			p := points[i]
			fmt.Printf("  %d. %-12s  RCoal_Score %.3g (time %.2fx, corr %+.3f)\n",
				i+1, p.policy.Name(), score(p, design.a, design.b), p.normTime, p.avgCorr)
		}
	}
}

func score(p point, a, b float64) float64 {
	s := 1 / (p.avgCorr * p.avgCorr) // S = squared inverse of avg correlation
	if math.IsInf(s, 1) {
		s = math.MaxFloat64
	}
	return rcoal.RCoalScore(s, p.normTime, a, b)
}

func measureTime(policy rcoal.Mechanism, key []byte) float64 {
	t, _ := measureRaw(policy, key)
	return t
}

func measure(policy rcoal.Mechanism, key []byte, baseTime float64) (normTime, avgCorr float64) {
	t, corr := measureRaw(policy, key)
	return t / baseTime, corr
}

func measureRaw(policy rcoal.Mechanism, key []byte) (meanTime, avgCorr float64) {
	cfg := rcoal.DefaultGPUConfig()
	cfg.Defense = policy
	srv, err := rcoal.NewServer(cfg, key)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := srv.Collect(samples, lines, 0x7E57)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range ds.Samples {
		meanTime += float64(s.TotalCycles)
	}
	meanTime /= float64(len(ds.Samples))

	atk, err := rcoal.NewAttacker(policy, 0xBAD5EED)
	if err != nil {
		log.Fatal(err)
	}
	cts := make([][]rcoal.Line, len(ds.Samples))
	for i, s := range ds.Samples {
		cts[i] = s.Ciphertexts
	}
	kr, err := atk.RecoverKey(cts, ds.LastRoundTimes())
	if err != nil {
		log.Fatal(err)
	}
	return meanTime, kr.AvgCorrectCorrelation(srv.LastRoundKey())
}
