// CTR mode: the timing attack does not care about the encryption
// mode. A GPU AES-CTR service looks safer — ciphertexts are
// keystream-masked, counters are structured — but an attacker with
// known plaintext reconstructs the keystream (ct XOR pt), and every
// keystream block is a plain AES encryption whose last-round
// coalescing leaks exactly like ECB. This example mounts the attack
// through CTR mode, then shows RCoal closing it.
package main

import (
	"fmt"
	"log"

	"rcoal"
)

const (
	samples = 400
	lines   = 32
)

func main() {
	key := []byte("ctr mode secret!")

	fmt.Println("=== AES-CTR on the undefended GPU ===")
	attackCTR(rcoal.Baseline(), key)

	fmt.Println("\n=== AES-CTR with RCoal (RSS+RTS, 8 subwarps) ===")
	attackCTR(rcoal.RSSRTS(8), key)
}

func attackCTR(policy rcoal.Mechanism, key []byte) {
	cfg := rcoal.DefaultGPUConfig()
	cfg.Defense = policy
	srv, err := rcoal.NewServer(cfg, key)
	if err != nil {
		log.Fatal(err)
	}

	// The attacker sends known plaintexts and records ciphertexts and
	// last-round timing; keystream = pt XOR ct.
	var keystreams [][]rcoal.Line
	var times []float64
	for n := 0; n < samples; n++ {
		pts := rcoal.RandomPlaintext(uint64(n+1), lines)
		out, err := srv.EncryptCTR(uint64(n)<<32, pts, uint64(n+77))
		if err != nil {
			log.Fatal(err)
		}
		ks := make([]rcoal.Line, lines)
		for i := range pts {
			for b := 0; b < 16; b++ {
				ks[i][b] = pts[i][b] ^ out.Ciphertexts[i][b]
			}
		}
		keystreams = append(keystreams, ks)
		times = append(times, float64(out.LastRoundCycles))
	}

	atk, err := rcoal.NewAttacker(policy, 0xC7C7C7)
	if err != nil {
		log.Fatal(err)
	}
	kr, err := atk.RecoverKey(keystreams, times)
	if err != nil {
		log.Fatal(err)
	}
	trueKey := srv.LastRoundKey()
	correct := kr.CorrectCount(trueKey)
	fmt.Printf("recovered %d/16 last-round key bytes through CTR mode\n", correct)
	fmt.Printf("guessing entropy %.1f guesses/byte, ~%.0f key bits left\n",
		kr.GuessingEntropy(trueKey), kr.RemainingKeyBits(trueKey))
	if correct == 16 {
		original := rcoal.InvertAES128Schedule(kr.Key)
		fmt.Printf("key schedule inverted: AES key = %q\n", original[:])
	}
}
