// Key recovery: the full correlation timing attack of Jiang et al.
// (the RCoal paper's baseline threat), end to end:
//
//  1. pose as a client of a remote GPU AES server, submitting random
//     plaintexts and recording ciphertexts + last-round timing;
//  2. for each last-round key byte, correlate guessed coalesced-access
//     counts with the timing and pick the best guess;
//  3. invert the AES-128 key schedule to recover the original key;
//  4. repeat against an RCoal-defended server and fail.
package main

import (
	"bytes"
	"fmt"
	"log"

	"rcoal"
)

const samples = 500 // enough for full 16/16 recovery on this substrate

func main() {
	secret := []byte("do-not-reveal-me")

	fmt.Println("=== Phase 1: attack the undefended GPU ===")
	recovered, ok := attackServer(rcoal.Baseline(), secret)
	if ok {
		fmt.Printf("last-round key fully recovered; inverting the key schedule...\n")
		original := rcoal.InvertAES128Schedule(recovered)
		fmt.Printf("recovered AES key: %q\n", original[:])
		if bytes.Equal(original[:], secret) {
			fmt.Println("ATTACK SUCCESSFUL: the recovered key matches the server's secret.")
		}
	} else {
		fmt.Println("attack incomplete (increase samples)")
	}

	fmt.Println("\n=== Phase 2: same attack against RCoal (RSS+RTS, 8 subwarps) ===")
	if _, ok := attackServer(rcoal.RSSRTS(8), secret); !ok {
		fmt.Println("ATTACK DEFEATED: randomized coalescing removed the usable correlation.")
	}
}

// attackServer mounts the corresponding attack against a server
// defended with the given policy; returns the recovered last-round key
// and whether all 16 bytes were correct.
func attackServer(policy rcoal.Mechanism, key []byte) ([16]byte, bool) {
	cfg := rcoal.DefaultGPUConfig()
	cfg.Defense = policy
	srv, err := rcoal.NewServer(cfg, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collecting %d timing samples from the %s server...\n", samples, policy.Name())
	ds, err := srv.Collect(samples, 32, 0xA77AC4)
	if err != nil {
		log.Fatal(err)
	}

	atk, err := rcoal.NewAttacker(policy, 0x5EED) // attacker's own RNG, not the hardware's
	if err != nil {
		log.Fatal(err)
	}
	cts := make([][]rcoal.Line, len(ds.Samples))
	for i, s := range ds.Samples {
		cts[i] = s.Ciphertexts
	}
	kr, err := atk.RecoverKey(cts, ds.LastRoundTimes())
	if err != nil {
		log.Fatal(err)
	}

	trueKey := srv.LastRoundKey()
	correct := kr.CorrectCount(trueKey)
	fmt.Printf("recovered %d/16 last-round key bytes (avg correct-byte corr %.3f)\n",
		correct, kr.AvgCorrectCorrelation(trueKey))
	return kr.Key, correct == 16
}
