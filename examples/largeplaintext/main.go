// Large plaintext: the paper's Section VI-D case study at library
// scale. Encrypt 1024-line plaintexts (32 warps spread over 15 SMs)
// under each mechanism and verify the defense scales: the attacker's
// ability to reconstruct the last-round access counts collapses while
// the performance overhead stays in the paper's reported band.
package main

import (
	"fmt"
	"log"
	"math"

	"rcoal"
)

const (
	samples = 12
	lines   = 1024
)

func main() {
	key := []byte("case study key!!")

	baseTime := 0.0
	fmt.Printf("%-12s  %10s  %12s  %16s\n", "mechanism", "time (x)", "last-rnd tx", "est-vs-obs corr")
	for _, policy := range []rcoal.Mechanism{
		rcoal.Baseline(),
		rcoal.RSS(2), rcoal.RSS(4), rcoal.RSS(8),
		rcoal.RSSRTS(2), rcoal.RSSRTS(4), rcoal.RSSRTS(8),
	} {
		cfg := rcoal.DefaultGPUConfig()
		cfg.Defense = policy
		srv, err := rcoal.NewServer(cfg, key)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := srv.Collect(samples, lines, 0x10_24)
		if err != nil {
			log.Fatal(err)
		}

		meanTime, meanTx := 0.0, 0.0
		for _, s := range ds.Samples {
			meanTime += float64(s.TotalCycles)
			meanTx += float64(s.LastRoundTx)
		}
		meanTime /= samples
		meanTx /= samples
		if baseTime == 0 {
			baseTime = meanTime
		}

		// How well can the corresponding attack, granted the full
		// correct key, reconstruct the observed last-round access
		// counts? 1.0 means a perfect timing model; near 0 means the
		// randomization removed the channel.
		atk, err := rcoal.NewAttacker(policy, 0xCA5E)
		if err != nil {
			log.Fatal(err)
		}
		corr := estimateVsObserved(atk, srv, ds)

		fmt.Printf("%-12s  %10.2f  %12.0f  %16.3f\n",
			policy.Name(), meanTime/baseTime, meanTx, corr)
	}
	fmt.Println("\nPaper (Fig. 18): overhead 29-76% for RSS+RTS at 2-8 subwarps, with the")
	fmt.Println("attack's access-count estimates decorrelated from the observed counts.")
}

func estimateVsObserved(atk *rcoal.Attacker, srv *rcoal.Server, ds *rcoal.Dataset) float64 {
	trueKey := srv.LastRoundKey()
	obs := ds.ObservedLastRoundTx()
	est := make([]float64, len(ds.Samples))
	cts := make([][]rcoal.Line, len(ds.Samples))
	for i, s := range ds.Samples {
		cts[i] = s.Ciphertexts
	}
	for j := 0; j < 16; j++ {
		u := atk.EstimationVector(cts, j, trueKey[j])
		for n := range u {
			est[n] += u[n]
		}
	}
	return pearson(est, obs)
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
