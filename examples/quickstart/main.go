// Quickstart: encrypt a plaintext on the simulated GPU under each
// RCoal defense mechanism and watch the security/performance knob
// move — more subwarps and more randomness mean more memory
// transactions and more cycles, in exchange for a harder timing
// side-channel.
package main

import (
	"fmt"
	"log"

	"rcoal"
)

func main() {
	key := []byte("quickstart key!!")
	plaintext := rcoal.RandomPlaintext(42, 32) // 32 lines = one warp

	mechanisms := []rcoal.Mechanism{
		rcoal.Baseline(),
		rcoal.FSS(4),
		rcoal.FSSRTS(4),
		rcoal.RSS(4),
		rcoal.RSSRTS(4),
		rcoal.FSS(32), // every thread alone: maximum security, maximum cost
	}

	fmt.Println("AES-128 encryption of 32 lines on the simulated GPU (Table I config):")
	fmt.Printf("%-12s  %12s  %12s  %14s\n", "mechanism", "cycles", "transactions", "last-round tx")
	for _, mech := range mechanisms {
		cfg := rcoal.DefaultGPUConfig()
		cfg.Defense = mech
		srv, err := rcoal.NewServer(cfg, key)
		if err != nil {
			log.Fatal(err)
		}
		sample, err := srv.Encrypt(plaintext, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %12d  %12d  %14d\n",
			mech.Name(), sample.TotalCycles, sample.TotalTx, sample.LastRoundTx)
	}

	// Ciphertexts are identical regardless of mechanism: RCoal changes
	// timing, never results.
	cfg := rcoal.DefaultGPUConfig()
	srv, _ := rcoal.NewServer(cfg, key)
	s, _ := srv.Encrypt(plaintext, 7)
	fmt.Printf("\nfirst ciphertext line: %x\n", s.Ciphertexts[0])
	fmt.Println("(identical under every mechanism — the defense only reshapes memory traffic)")
}
