package rcoal

import (
	"strings"
	"testing"
)

func TestParseMechanism(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"baseline", "Baseline"},
		{"fss:4", "FSS(4)"},
		{"FSS+RTS:8", "FSS+RTS(8)"},
		{"fssrts:8", "FSS+RTS(8)"},
		{"rss:2", "RSS(2)"},
		{"rss+rts:16", "RSS+RTS(16)"},
		{" rss-normal:4 ", "RSS(normal)(4)"},
	}
	for _, c := range cases {
		cfg, err := ParseMechanism(c.spec)
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if cfg.Name() != c.name {
			t.Errorf("%q parsed as %q, want %q", c.spec, cfg.Name(), c.name)
		}
	}
	for _, bad := range []string{"", "warp", "fss:0", "fss:3", "fss:x", "rss:33"} {
		if _, err := ParseMechanism(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// The quickstart flow through the public API only.
	cfg := DefaultGPUConfig()
	cfg.Defense = RSSRTS(8)
	srv, err := NewServer(cfg, []byte("facade test key!"))
	if err != nil {
		t.Fatal(err)
	}
	sample, err := srv.Encrypt(RandomPlaintext(1, 32), 7)
	if err != nil {
		t.Fatal(err)
	}
	if sample.TotalCycles <= 0 || len(sample.Ciphertexts) != 32 {
		t.Fatalf("bad sample: %+v", sample)
	}

	atk, err := NewAttacker(RSSRTS(8), 99)
	if err != nil {
		t.Fatal(err)
	}
	if atk.Name() == "" {
		t.Error("attacker unnamed")
	}
	if BaselineAttacker(1) == nil {
		t.Error("no baseline attacker")
	}
}

func TestFacadeTheoryAndMetrics(t *testing.T) {
	md, err := NewSecurityModel(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rho := md.RhoFSSRTS(16); rho < 0.02 || rho > 0.05 {
		t.Errorf("model rho = %v", rho)
	}
	if s := SamplesForAttack(0.03, 0.99); s < 5000 {
		t.Errorf("SamplesForAttack(0.03) = %v, want thousands", s)
	}
	if sc := RCoalScore(100, 2, 1, 1); sc != 50 {
		t.Errorf("RCoalScore = %v", sc)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	o := DefaultExperimentOptions()
	o.Samples = 5
	out, err := RunExperiment("fig10", o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "coalescing worked examples") {
		t.Errorf("unexpected render: %s", out)
	}
	if _, err := RunExperiment("nope", o); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeModes(t *testing.T) {
	cfg := DefaultGPUConfig()
	srv, err := NewServer(cfg, []byte("facade modes key"))
	if err != nil {
		t.Fatal(err)
	}
	pts := RandomPlaintext(9, 32)

	// Decryption service round-trips.
	enc, err := srv.Encrypt(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := srv.Decrypt(enc.Ciphertexts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if dec.Ciphertexts[i] != pts[i] {
			t.Fatal("facade decrypt did not round-trip")
		}
	}

	// CTR sample type is exported.
	var ctr *CTRSample
	ctr, err = srv.EncryptCTR(7, pts, 3)
	if err != nil || len(ctr.Keystream) != 32 {
		t.Fatalf("CTR: %v", err)
	}

	// Decryption attacker constructs.
	if _, err := NewDecryptAttacker(RSSRTS(4), 1); err != nil {
		t.Fatal(err)
	}
}
