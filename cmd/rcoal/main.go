// Command rcoal is the interactive front door to the RCoal
// reproduction: encrypt on the simulated GPU under any defense
// mechanism, mount the correlation timing attack against it, and
// inspect the security/performance trade-off.
//
// Usage:
//
//	rcoal encrypt -mechanism rss+rts:8 -lines 32
//	rcoal attack  -mechanism fss:4 -samples 200 -service ctr
//	rcoal sweep   -m 1,2,4,8,16
//	rcoal theory
//	rcoal list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rcoal"
	"rcoal/internal/experiments"
	"rcoal/internal/gpusim"
	"rcoal/internal/gpusim/tracevis"
	"rcoal/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "encrypt":
		err = cmdEncrypt(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "theory":
		err = cmdTheory(os.Args[2:])
	case "list":
		for _, id := range rcoal.ExperimentIDs() {
			fmt.Println(id)
		}
	case "list-mechanisms":
		err = cmdListMechanisms()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rcoal: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcoal:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rcoal — randomized GPU memory coalescing (HPCA'18 reproduction)

commands:
  encrypt          run one AES encryption on the simulated GPU and report timing
  attack           mount the correlation timing attack against a defended server
  sweep            security/performance grid over all mechanisms and subwarp counts
  theory           print the Table II analytical security model
  list             list reproducible paper experiments (see rcoal-experiments)
  list-mechanisms  list the registered defense mechanisms and their spec grammar

run "rcoal <command> -h" for flags.
`)
}

func cmdEncrypt(args []string) error {
	fs := flag.NewFlagSet("encrypt", flag.ExitOnError)
	mech := fs.String("mechanism", "baseline", "defense mechanism, e.g. fss:4, rss+rts:8")
	lines := fs.Int("lines", 32, "plaintext lines (one per thread)")
	key := fs.String("key", "RCoal eval key 1", "AES key (16/24/32 bytes)")
	seed := fs.Uint64("seed", 1, "seed for plaintext and hardware randomness")
	nocoal := fs.Bool("disable-coalescing", false, "disable coalescing entirely (Section III strawman)")
	traceOut := fs.String("trace-out", "", "write a Chrome/Perfetto trace of the launch to this file")
	metricsOut := fs.String("metrics-out", "", "write the launch's metrics snapshot (coalescing histograms, DRAM row stats, stalls) as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy, err := rcoal.ParseMechanism(*mech)
	if err != nil {
		return err
	}
	if *nocoal {
		policy = rcoal.NoCoal()
	}
	cfg := rcoal.DefaultGPUConfig()
	cfg.Defense = policy
	var exporter *tracevis.Exporter
	if *traceOut != "" {
		exporter = tracevis.New()
		cfg.Trace = exporter
	}
	if *metricsOut != "" {
		cfg.Metrics = gpusim.NewMetrics()
	}
	srv, err := rcoal.NewServer(cfg, []byte(*key))
	if err != nil {
		return err
	}
	sample, err := srv.Encrypt(rcoal.RandomPlaintext(*seed, *lines), *seed)
	if err != nil {
		return err
	}

	t := &report.Table{Title: fmt.Sprintf("AES-%d on simulated GPU, %s, %d lines",
		128, policy.Name(), *lines), Headers: []string{"metric", "value"}}
	t.AddRow("total cycles", fmt.Sprintf("%d", sample.TotalCycles))
	t.AddRow("last-round cycles", fmt.Sprintf("%d", sample.LastRoundCycles))
	t.AddRow("total memory transactions", fmt.Sprintf("%d", sample.TotalTx))
	t.AddRow("last-round transactions", fmt.Sprintf("%d", sample.LastRoundTx))
	t.AddRow("subwarp sizes", fmt.Sprintf("%v", sample.Plan.Sizes))
	t.AddRow("first ciphertext line", fmt.Sprintf("%x", sample.Ciphertexts[0]))
	fmt.Print(t.String())
	if exporter != nil {
		if err := exporter.WriteFile(*traceOut); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("trace: %d events written to %s (load at ui.perfetto.dev)\n", exporter.Len(), *traceOut)
	}
	if *metricsOut != "" {
		raw, err := json.MarshalIndent(sample.Metrics, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*metricsOut, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
		if h, ok := sample.Metrics.Histograms[gpusim.MetricTxPerInstr]; ok {
			fmt.Println()
			fmt.Print(report.MetricsHistogram("coalesced transactions per load instruction", h, 40))
		}
		fmt.Printf("metrics: snapshot written to %s\n", *metricsOut)
	}
	return nil
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	mech := fs.String("mechanism", "baseline", "defense the server runs AND the attack assumes")
	samples := fs.Int("samples", 200, "timing samples to collect")
	lines := fs.Int("lines", 32, "plaintext lines per sample")
	key := fs.String("key", "RCoal eval key 1", "AES key under attack")
	seed := fs.Uint64("seed", 0x8C0A1, "master seed")
	service := fs.String("service", "encrypt", "victim service: encrypt, decrypt, or ctr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy, err := rcoal.ParseMechanism(*mech)
	if err != nil {
		return err
	}
	cfg := rcoal.DefaultGPUConfig()
	cfg.Defense = policy
	srv, err := rcoal.NewServer(cfg, []byte(*key))
	if err != nil {
		return err
	}
	fmt.Printf("collecting %d timing samples from a %s %s server...\n", *samples, policy.Name(), *service)
	cts := make([][]rcoal.Line, *samples)
	times := make([]float64, *samples)
	trueKey := srv.LastRoundKey()
	var atk *rcoal.Attacker
	switch *service {
	case "encrypt":
		ds, err := srv.Collect(*samples, *lines, *seed)
		if err != nil {
			return err
		}
		for i, s := range ds.Samples {
			cts[i] = s.Ciphertexts
		}
		times = ds.LastRoundTimes()
		if atk, err = rcoal.NewAttacker(policy, *seed^0xA77ACC); err != nil {
			return err
		}
	case "decrypt":
		trueKey = srv.RoundZeroKey() // decryption leaks the original key
		for n := 0; n < *samples; n++ {
			in := rcoal.RandomPlaintext(*seed^uint64(n+1), *lines)
			smp, err := srv.Decrypt(in, *seed^uint64(n+1)*0x9e37)
			if err != nil {
				return err
			}
			cts[n] = smp.Ciphertexts // recovered plaintexts
			times[n] = float64(smp.LastRoundCycles)
		}
		var err error
		if atk, err = rcoal.NewDecryptAttacker(policy, *seed^0xA77ACC); err != nil {
			return err
		}
	case "ctr":
		for n := 0; n < *samples; n++ {
			pts := rcoal.RandomPlaintext(*seed^uint64(n+1), *lines)
			out, err := srv.EncryptCTR(uint64(n)<<32, pts, *seed^uint64(n+1)*0x9e37)
			if err != nil {
				return err
			}
			cts[n] = out.Keystream // = pt XOR ct, reconstructable
			times[n] = float64(out.LastRoundCycles)
		}
		var err error
		if atk, err = rcoal.NewAttacker(policy, *seed^0xA77ACC); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown service %q (want encrypt, decrypt, or ctr)", *service)
	}
	kr, err := atk.RecoverKey(cts, times)
	if err != nil {
		return err
	}
	t := &report.Table{Title: "correlation timing attack (" + atk.Name() + ")",
		Headers: []string{"byte", "true", "recovered", "corr", "rank"}}
	correct := 0
	for j := 0; j < 16; j++ {
		ok := kr.Key[j] == trueKey[j]
		if ok {
			correct++
		}
		t.AddRow(j, fmt.Sprintf("%02x", trueKey[j]), fmt.Sprintf("%02x", kr.Key[j]),
			kr.Bytes[j].BestCorr, fmt.Sprintf("%d/256", kr.Bytes[j].Rank(trueKey[j])))
	}
	fmt.Print(t.String())
	fmt.Printf("\nrecovered %d/16 last-round key bytes; avg correct-byte correlation %.3f\n",
		correct, kr.AvgCorrectCorrelation(trueKey))
	fmt.Printf("guessing entropy %.1f guesses/byte; ~%.1f key bits left to brute-force\n",
		kr.GuessingEntropy(trueKey), kr.RemainingKeyBits(trueKey))
	if correct == 16 {
		fmt.Println("FULL LAST-ROUND KEY RECOVERED — the AES-128 key schedule is invertible, the key is lost.")
	}
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	samples := fs.Int("samples", 60, "timing samples per configuration")
	seed := fs.Uint64("seed", 0x8C0A1, "master seed")
	ms := fs.String("m", "1,2,4,8,16", "comma-separated num-subwarp values")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var mvals []int
	for _, part := range strings.Split(*ms, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 || v > 32 || 32%v != 0 {
			return fmt.Errorf("bad num-subwarp %q (must divide 32)", part)
		}
		mvals = append(mvals, v)
	}
	o := rcoal.DefaultExperimentOptions()
	o.Samples = *samples
	o.Seed = *seed
	sw, err := experiments.Sweep(o, mvals)
	if err != nil {
		return err
	}
	t := &report.Table{Title: fmt.Sprintf("mechanism sweep (%d samples; time/tx normalized to baseline)", *samples),
		Headers: []string{"mechanism", "num-subwarp", "time (x)", "tx (x)", "attack corr"}}
	for _, c := range sw.Cells {
		t.AddRow(c.Mechanism.String(), c.M, c.NormCycles, c.NormTx, c.AvgCorrectCorr)
	}
	fmt.Print(t.String())
	return nil
}

func cmdListMechanisms() error {
	t := &report.Table{Title: "registered defense mechanisms (-mechanism accepts any example spec)",
		Headers: []string{"keyword", "usage", "aliases", "examples", "summary"}}
	for _, info := range rcoal.ListMechanisms() {
		t.AddRow(info.Keyword, info.Usage, strings.Join(info.Aliases, ", "),
			strings.Join(info.Examples, ", "), info.Summary)
	}
	fmt.Print(t.String())
	return nil
}

func cmdTheory(args []string) error {
	fs := flag.NewFlagSet("theory", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := rcoal.DefaultExperimentOptions()
	out, err := rcoal.RunExperiment("table2", o)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
