// Command rcoal-coordinator runs an experiment sweep as the
// coordinator of a distributed fleet: it enumerates the selected
// experiments' grids, leases cells to workers over HTTP (see
// rcoal-experiments -worker), journals every lease and completion in a
// durable checkpoint ledger, and renders the same reports and CSVs a
// single-process run would — byte-identically, at any worker count.
//
// Usage:
//
//	rcoal-coordinator -addr :8077 -run fig7 -journal ckpt
//	rcoal-coordinator -addr :8077 -run all -journal ckpt -resume -cache cachedir
//	rcoal-experiments -worker http://coordinator:8077   # on each machine
//
// The control plane lives on the same address: GET /status for live
// grid progress, per-worker rates, and straggler flags; GET /metrics
// for Prometheus text exposition; POST /leases/cancel to revoke (and
// thereby retry) an in-flight lease; /debug/vars for expvar. With
// -trace-out the coordinator merges its own lease spans with the
// per-cell span reports workers attach to completions into one
// fleet-wide Chrome/Perfetto trace; -log-json emits structured
// lease-lifecycle events; -flight-out dumps a bounded ring of recent
// events when the sweep fails.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rcoal/internal/atomicio"
	"rcoal/internal/checkpoint"
	"rcoal/internal/dist"
	"rcoal/internal/experiments"
	"rcoal/internal/kernels"
	"rcoal/internal/obs"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:8077", "address to serve the lease protocol and control plane on")
		run     = flag.String("run", "", "experiment ID to run, or \"all\"")
		samples = flag.Int("samples", 100, "plaintext timing samples per configuration")
		lines   = flag.Int("lines", 32, "plaintext lines per sample (fig18 always uses 1024)")
		seed    = flag.Uint64("seed", 0x8C0A1, "master random seed")
		key     = flag.String("key", "RCoal eval key 1", "AES key (16/24/32 bytes)")
		csvDir  = flag.String("csv", "", "directory to write <id>.csv data files into (optional)")
		jdir    = flag.String("journal", "", "directory for per-experiment lease ledgers (<id>.journal); required")
		resume  = flag.Bool("resume", false, "resume from existing ledgers: journaled cells restore, journaled leases stay stale-detectable")
		cdir    = flag.String("cache", "", "directory for the fingerprint-keyed results cache; cells computed by any prior sweep under identical options are restored instead of leased")
		par     = flag.Int("parallel", 1, "experiments whose grids are open for leasing concurrently")
		accel   = flag.Bool("accel", false, "lease cells with the exact accelerators enabled on workers (results are byte-identical)")
		hybrid  = flag.Bool("hybrid", false, "lease cells with the hybrid analytical substitution (scores may differ within HybridScoreBound)")
		mechs   = flag.String("mechanisms", "", "comma-separated defense specs restricting mechanism-enumerating experiments (ext-defense-frontier), e.g. \"baseline,rss+rts:8,delay:64\"; empty = full registry; the filter travels in each lease")
		leaseTO  = flag.Duration("lease-timeout", 2*time.Minute, "silence budget per lease before the cell is re-issued to another worker; holders renew long computations via /lease/renew")
		hb       = flag.Duration("heartbeat", 0, "period of the live status line on stderr (cells done, cache hit/miss, workers, rate, eta); 0 = off")
		drain    = flag.Duration("drain-wait", 2*time.Second, "grace period after the last grid completes so polling workers see Done and exit")
		traceOut = flag.String("trace-out", "", "write the merged fleet-wide Chrome/Perfetto trace (coordinator lease spans + per-cell worker spans) to this file after the sweep")
		logJSON  = flag.Bool("log-json", false, "emit structured lease-lifecycle events as JSON lines on stderr")
		logLevel = flag.String("log-level", "info", "structured log threshold: debug, info, warn, error (with -log-json)")
		flight   = flag.String("flight-out", "", "dump the in-memory flight recorder (last events at every level) to this file when the sweep fails")
	)
	flag.Parse()

	if *run == "" {
		fmt.Fprintln(os.Stderr, "usage: rcoal-coordinator -addr :8077 -run <id>|all -journal <dir>")
		os.Exit(2)
	}
	if *jdir == "" {
		fmt.Fprintln(os.Stderr, "rcoal-coordinator: -journal is required (the ledger is what makes leases durable)")
		os.Exit(2)
	}

	opts := experiments.DefaultOptions()
	opts.Samples = *samples
	opts.Lines = *lines
	opts.Seed = *seed
	opts.Key = []byte(*key)
	opts.Hybrid = *hybrid
	if *mechs != "" {
		for _, spec := range strings.Split(*mechs, ",") {
			opts.Mechanisms = append(opts.Mechanisms, strings.TrimSpace(spec))
		}
	}
	if *accel {
		// The coordinator never simulates, but a non-nil trace cache is
		// how Options carries "accelerate" to dist.WireFrom; workers
		// build their own shared cache per process.
		opts.TraceCache = kernels.NewTraceCache()
		opts.ForkPrefix = true
	}

	// Observability plane: one trace id for the whole sweep, minted
	// here and propagated to every worker through the lease protocol.
	// The structured logger tees into the flight recorder so a crash
	// dump always holds the last ~256 events at every level.
	traceID := obs.NewTraceID()
	var fleetTrace *obs.FleetTrace
	if *traceOut != "" {
		fleetTrace = obs.NewFleetTrace(traceID)
	}
	var recorder *obs.FlightRecorder
	if *flight != "" {
		recorder = obs.NewFlightRecorder(obs.DefaultFlightCapacity)
	}
	var logger *obs.Logger
	if *logJSON || recorder != nil {
		// Recorder-only mode (flight recorder without -log-json) keeps
		// stderr quiet but still feeds the event ring.
		logDst := io.Writer(os.Stderr)
		if !*logJSON {
			logDst = io.Discard
		}
		logger = obs.NewLogger(logDst, obs.LogConfig{
			JSON: true, Level: obs.ParseLevel(*logLevel), Recorder: recorder,
		}).With("trace_id", traceID, "role", "coordinator")
	}
	// dumpFlight writes the ring atomically; called on failure paths.
	dumpFlight := func(reason string) {
		if recorder == nil {
			return
		}
		if err := recorder.Dump(*flight, reason, traceID); err != nil {
			fmt.Fprintf(os.Stderr, "rcoal-coordinator: flight dump: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "rcoal-coordinator: flight recorder dumped to %s (%s)\n", *flight, reason)
		}
	}

	s := dist.NewServer(dist.ServerConfig{
		LeaseTimeout: *leaseTO,
		TraceID:      traceID,
		Trace:        fleetTrace,
		Log:          logger,
	})
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	expvar.Publish("rcoal_dist", expvar.Func(func() any { return s.Status() }))
	srv := &http.Server{
		Addr:    *addr,
		Handler: mux,
		// A client that stalls mid-request (or a chaos-injected partial
		// delivery) must not pin a handler goroutine forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "rcoal-coordinator: serve: %v\n", err)
			os.Exit(1)
		}
	}()
	fmt.Fprintf(os.Stderr, "rcoal-coordinator: serving on %s (status: http://%s/status)\n", *addr, *addr)
	logger.Info("coordinator serving", "addr", *addr, "run", *run)

	// Graceful shutdown on SIGINT/SIGTERM: close the lease server so
	// the experiment goroutines return (their defers flush and close
	// the journals — every granted lease and accepted completion is
	// already fsynced), then drain in-flight HTTP exchanges. A second
	// signal exits immediately.
	var interrupted atomic.Bool
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		interrupted.Store(true)
		fmt.Fprintln(os.Stderr, "rcoal-coordinator: signal received; flushing journals and shutting down (restart with -resume to continue)")
		logger.Warn("shutdown signal received")
		dumpFlight("shutdown signal")
		s.Close()
		<-sig
		fmt.Fprintln(os.Stderr, "rcoal-coordinator: second signal, exiting immediately")
		os.Exit(1)
	}()

	if *hb > 0 {
		stop := s.Heartbeat(os.Stderr, *hb)
		defer stop()
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}

	type outcome struct {
		report  string
		elapsed float64
		err     error
	}
	results := make([]outcome, len(ids))
	sem := make(chan struct{}, maxInt(1, *par))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			o := opts
			j, err := experiments.OpenJournal(filepath.Join(*jdir, id+".journal"), id, o, *resume)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			defer j.Close()
			if *resume && j.Len() > 0 {
				fmt.Fprintf(os.Stderr, "%s: resuming with %d journaled cells (%d discarded)\n",
					id, j.Len(), j.Discarded)
			}
			var cache *checkpoint.Journal
			if *cdir != "" {
				cache, err = experiments.OpenCache(*cdir, id, o)
				if err != nil {
					results[i] = outcome{err: err}
					return
				}
				defer cache.Close()
			}
			o.Exec = dist.NewExec(s, id, j, cache)
			res, err := experiments.Run(id, o)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			out := res.Render()
			if *csvDir != "" {
				if c, ok := res.(experiments.CSVer); ok {
					path := filepath.Join(*csvDir, id+".csv")
					if werr := atomicio.WriteFile(path, []byte(c.CSV()), 0o644); werr != nil {
						results[i] = outcome{err: werr}
						return
					}
					out += fmt.Sprintf("(data written to %s)\n", path)
				}
			}
			results[i] = outcome{report: out, elapsed: time.Since(start).Seconds()}
		}(i, id)
	}
	wg.Wait()

	// Tell polling workers the sweep is over, give them one poll cycle
	// to hear it, then stop serving — gracefully, so responses in
	// flight complete instead of being cut mid-body.
	if !interrupted.Load() {
		s.Drain()
		logger.Info("sweep drained")
		time.Sleep(*drain)
	}

	// Label stragglers while worker stats are still live, then write
	// the merged fleet trace.
	if fleetTrace != nil {
		s.FinalizeTrace()
		if err := fleetTrace.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "rcoal-coordinator: writing fleet trace: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "rcoal-coordinator: fleet trace (%d events, trace %s) written to %s\n",
				fleetTrace.Len(), traceID, *traceOut)
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
	}
	cancel()

	exit := 0
	for i, id := range ids {
		if results[i].err != nil {
			fmt.Fprintf(os.Stderr, "rcoal-coordinator: %s: %v\n", id, results[i].err)
			logger.Error("experiment failed", "experiment", id, "error", results[i].err.Error())
			exit = 1
			continue
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, results[i].elapsed, results[i].report)
	}
	if exit != 0 {
		dumpFlight("experiment failure")
	}
	if exit == 0 {
		st := s.Status()
		fmt.Fprintf(os.Stderr, "rcoal-coordinator: done; served %d worker(s)\n", len(st.Workers))
	}
	os.Exit(exit)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
