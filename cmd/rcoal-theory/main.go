// Command rcoal-theory evaluates the Section V analytical security
// model at arbitrary (N, R, M) points — the generalization of the
// paper's Table II beyond the default 32-thread, 16-block
// configuration.
//
// Usage:
//
//	rcoal-theory                      # Table II (N=32, R=16)
//	rcoal-theory -n 64 -r 32 -m 1,2,4,8,16,32,64
//	rcoal-theory -alpha 0.99 -absolute
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rcoal"
	"rcoal/internal/report"
)

func main() {
	var (
		n        = flag.Int("n", 32, "threads per warp (N)")
		r        = flag.Int("r", 16, "memory blocks per lookup table (R)")
		ms       = flag.String("m", "1,2,4,8,16,32", "comma-separated subwarp counts (M)")
		mechSpec = flag.String("mechanism", "", "evaluate one defense spec (e.g. rss+rts:8) instead of the Table II grid")
		alpha    = flag.Float64("alpha", 0.99, "attack success rate for absolute sample counts")
		absolute = flag.Bool("absolute", false, "also print absolute samples via Equation 4")
		progress = flag.Bool("progress", false, "report per-row compute time on stderr (the partition sums get slow at large N)")
	)
	flag.Parse()

	md, err := rcoal.NewSecurityModel(*n, *r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcoal-theory:", err)
		os.Exit(1)
	}

	if *mechSpec != "" {
		mech, err := rcoal.ParseMechanism(*mechSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rcoal-theory:", err)
			os.Exit(1)
		}
		rho, ok := md.RhoFor(mech)
		if !ok {
			fmt.Printf("%s: the Section V model has no closed form for this mechanism;\n"+
				"measure it empirically (rcoal-experiments -run ext-defense-frontier).\n", mech.Name())
			return
		}
		fmt.Printf("%s: analytic rho = %s (N=%d, R=%d)\n", mech.Name(), report.FormatFloat(rho, 4), *n, *r)
		if *absolute {
			fmt.Printf("samples for a successful attack (Equation 4, alpha=%.2f): %s\n",
				*alpha, report.FormatFloat(rcoal.SamplesForAttack(rho, *alpha), 0))
		}
		return
	}

	var mvals []int
	for _, part := range strings.Split(*ms, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 || v > *n {
			fmt.Fprintf(os.Stderr, "rcoal-theory: bad M value %q\n", part)
			os.Exit(1)
		}
		if *n%v != 0 {
			fmt.Fprintf(os.Stderr, "rcoal-theory: M=%d does not divide N=%d (FSS needs equal subwarps)\n", v, *n)
			os.Exit(1)
		}
		mvals = append(mvals, v)
	}

	// Rows are independent, so computing them one M at a time costs
	// nothing and lets -progress time each (the Σ_F sum enumerates all
	// partitions of N, which grows fast: 8349 at N=32, 1.7M at N=64).
	var rows []rcoal.SecurityRow
	for _, m := range mvals {
		start := time.Now()
		rows = append(rows, md.Table2([]int{m})...)
		if *progress {
			fmt.Fprintf(os.Stderr, "rcoal-theory: M=%d done in %v\n",
				m, time.Since(start).Round(time.Millisecond))
		}
	}
	t := &report.Table{
		Title: fmt.Sprintf("Analytical security model, N=%d threads, R=%d blocks (S normalized to M=1)", *n, *r),
		Headers: []string{"M", "rho FSS", "rho FSS+RTS", "rho RSS+RTS",
			"S FSS+RTS", "S RSS+RTS"},
	}
	for _, row := range rows {
		t.AddRow(row.M,
			report.FormatFloat(row.RhoFSS, 2),
			report.FormatFloat(row.RhoFSSRTS, 4),
			report.FormatFloat(row.RhoRSSRTS, 4),
			report.FormatFloat(row.SFSSRTS, 0),
			report.FormatFloat(row.SRSSRTS, 0))
	}
	fmt.Print(t.String())

	if *absolute {
		t2 := &report.Table{
			Title:   fmt.Sprintf("\nAbsolute samples for a successful attack (Equation 4, alpha=%.2f)", *alpha),
			Headers: []string{"M", "samples FSS+RTS", "samples RSS+RTS"},
		}
		for _, row := range rows {
			t2.AddRow(row.M,
				report.FormatFloat(rcoal.SamplesForAttack(row.RhoFSSRTS, *alpha), 0),
				report.FormatFloat(rcoal.SamplesForAttack(row.RhoRSSRTS, *alpha), 0))
		}
		fmt.Print(t2.String())
	}
}
