// Command rcoal-experiments reproduces the RCoal paper's evaluation:
// every figure and table has a registered experiment that prints its
// data as an ASCII table or chart.
//
// Usage:
//
//	rcoal-experiments -list
//	rcoal-experiments -run fig6
//	rcoal-experiments -run all -samples 100 -seed 7
//	rcoal-experiments -run all -journal ckpt          # checkpoint finished cells
//	rcoal-experiments -run all -journal ckpt -resume  # skip journaled cells
//	rcoal-experiments -run all -accel                 # trace cache + prefix forking (byte-identical)
//	rcoal-experiments -run fig15 -hybrid              # analytical closed cells (bounded score drift)
//	rcoal-experiments -run all -cache cachedir        # reuse cells from any prior identical sweep
//	rcoal-experiments -worker http://host:8077        # compute cells for a rcoal-coordinator
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"rcoal/internal/atomicio"
	"rcoal/internal/chaos"
	"rcoal/internal/dist"
	"rcoal/internal/experiments"
	"rcoal/internal/gpusim/tracevis"
	"rcoal/internal/kernels"
	"rcoal/internal/runner"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiment IDs")
		run      = flag.String("run", "", "experiment ID to run, or \"all\"")
		samples  = flag.Int("samples", 100, "plaintext timing samples per configuration")
		lines    = flag.Int("lines", 32, "plaintext lines per sample (fig18 always uses 1024)")
		seed     = flag.Uint64("seed", 0x8C0A1, "master random seed")
		key      = flag.String("key", "RCoal eval key 1", "AES key (16/24/32 bytes)")
		csvDir   = flag.String("csv", "", "directory to write <id>.csv data files into (optional)")
		par      = flag.Int("parallel", 1, "experiments to run concurrently (they are independent and deterministic)")
		workers  = flag.Int("workers", 0, "cells evaluated concurrently inside each experiment; 0 = GOMAXPROCS, 1 = serial (results are identical at any setting)")
		prog     = flag.Bool("progress", false, "report per-experiment cell progress on stderr")
		jdir     = flag.String("journal", "", "directory for per-experiment checkpoint journals (<id>.journal); completed cells survive crashes")
		resume   = flag.Bool("resume", false, "resume from existing journals, skipping journaled cells (requires -journal)")
		cellTO   = flag.Duration("cell-timeout", 0, "per-cell time budget; 0 = unlimited")
		retries  = flag.Int("retries", 0, "extra attempts for cells failing with a retryable fault")
		traceOut = flag.String("trace-out", "", "write a Chrome/Perfetto trace of every simulated launch to this file (large; best with a single small experiment)")
		hb       = flag.Duration("heartbeat", 0, "period of the live telemetry line on stderr (cells done, rate, eta, worker utilization); 0 = off")
		maddr    = flag.String("metrics-addr", "", "serve live run telemetry over HTTP expvar at this address (e.g. localhost:6060/debug/vars)")
		accel    = flag.Bool("accel", false, "enable the exact accelerators: per-run trace caching plus copy-on-write prefix forking where applicable (results are byte-identical)")
		hybrid   = flag.Bool("hybrid", false, "replace analytically closed sweep cells with the Section V model's score instead of simulating the attack (scores may differ within the documented HybridScoreBound; performance columns stay simulated)")
		cdir     = flag.String("cache", "", "directory for the fingerprint-keyed results cache: cells computed by any prior sweep under identical result-determining options are restored instead of re-run")
		mechs    = flag.String("mechanisms", "", "comma-separated defense specs restricting mechanism-enumerating experiments (ext-defense-frontier), e.g. \"baseline,rss+rts:8,delay:64\"; empty = full registry")
		worker   = flag.String("worker", "", "run as a distributed worker for the rcoal-coordinator at this base URL (e.g. http://host:8077) instead of running experiments locally; -workers bounds concurrent cells")
		workerID = flag.String("worker-id", "", "worker name in the coordinator's ledger and status page; default host:pid")
		chaosSee = flag.Uint64("chaos-seed", 0, "worker mode: inject deterministic network faults on every coordinator request from this seed's schedule (internal/chaos; testing only); 0 = off")
		degrade  = flag.String("degraded-journal", "", "worker mode: local checkpoint journal for degraded standalone mode — completions undeliverable for -degraded-after park here instead of being lost and replay on the next run")
		degAfter = flag.Duration("degraded-after", 30*time.Second, "worker mode: delivery-failure window before a completion is parked (requires -degraded-journal)")
		reqTO    = flag.Duration("request-timeout", 30*time.Second, "worker mode: per-request HTTP timeout toward the coordinator")
	)
	flag.Parse()

	if *resume && *jdir == "" {
		fmt.Fprintln(os.Stderr, "rcoal-experiments: -resume requires -journal")
		os.Exit(2)
	}

	if *worker != "" {
		os.Exit(runWorker(workerConfig{
			coordinator: *worker, id: *workerID, concurrency: *workers, verbose: *prog,
			chaosSeed: *chaosSee, degradedPath: *degrade, degradedAfter: *degAfter,
			requestTimeout: *reqTO,
		}))
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "usage: rcoal-experiments -run <id>|all  (or -list)")
		os.Exit(2)
	}

	opts := experiments.DefaultOptions()
	opts.Samples = *samples
	opts.Lines = *lines
	opts.Seed = *seed
	opts.Key = []byte(*key)
	opts.Workers = *workers
	opts.CellTimeout = *cellTO
	opts.Retries = *retries
	opts.Hybrid = *hybrid
	if *mechs != "" {
		for _, spec := range strings.Split(*mechs, ",") {
			opts.Mechanisms = append(opts.Mechanisms, strings.TrimSpace(spec))
		}
	}
	if *accel {
		// One cache for the whole invocation: experiments share the key
		// and plaintext streams, so cross-experiment hits are real.
		opts.TraceCache = kernels.NewTraceCache()
		opts.ForkPrefix = true
	}

	var exporter *tracevis.Exporter
	if *traceOut != "" {
		exporter = tracevis.New()
		opts.Trace = exporter
	}
	if *hb > 0 || *maddr != "" {
		tel := runner.NewTelemetry()
		opts.Telemetry = tel
		if *hb > 0 {
			stop := tel.Heartbeat(os.Stderr, *hb)
			defer stop()
		}
		if *maddr != "" {
			expvar.Publish("rcoal_telemetry", expvar.Func(func() any { return tel.Stats() }))
			go func() {
				if err := http.ListenAndServe(*maddr, nil); err != nil {
					fmt.Fprintf(os.Stderr, "rcoal-experiments: metrics endpoint: %v\n", err)
				}
			}()
		}
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}

	type outcome struct {
		report  string
		elapsed float64
		err     error
	}
	results := make([]outcome, len(ids))
	sem := make(chan struct{}, max(1, *par))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			o := opts
			if *prog {
				o.Progress = func(done, total int) {
					fmt.Fprintf(os.Stderr, "%s: %d/%d cells\n", id, done, total)
				}
			}
			if *jdir != "" {
				j, jerr := experiments.OpenJournal(filepath.Join(*jdir, id+".journal"), id, o, *resume)
				if jerr != nil {
					results[i] = outcome{err: jerr}
					return
				}
				defer j.Close()
				if *resume && j.Len() > 0 {
					fmt.Fprintf(os.Stderr, "%s: resuming with %d journaled cells (%d discarded)\n",
						id, j.Len(), j.Discarded)
				}
				o.Journal = j
			}
			if *cdir != "" {
				c, cerr := experiments.OpenCache(*cdir, id, o)
				if cerr != nil {
					results[i] = outcome{err: cerr}
					return
				}
				defer c.Close()
				o.Cache = c
			}
			res, err := experiments.Run(id, o)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			out := res.Render()
			if *csvDir != "" {
				if c, ok := res.(experiments.CSVer); ok {
					path := filepath.Join(*csvDir, id+".csv")
					if werr := atomicio.WriteFile(path, []byte(c.CSV()), 0o644); werr != nil {
						results[i] = outcome{err: werr}
						return
					}
					out += fmt.Sprintf("(data written to %s)\n", path)
				}
			}
			results[i] = outcome{report: out, elapsed: time.Since(start).Seconds()}
		}(i, id)
	}
	wg.Wait()
	if exporter != nil {
		if err := exporter.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "rcoal-experiments: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s (load at ui.perfetto.dev)\n",
			exporter.Len(), *traceOut)
	}
	for i, id := range ids {
		if results[i].err != nil {
			fmt.Fprintf(os.Stderr, "rcoal-experiments: %s: %v\n", id, results[i].err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, results[i].elapsed, results[i].report)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// workerConfig bundles the worker-mode flags.
type workerConfig struct {
	coordinator    string
	id             string
	concurrency    int
	verbose        bool
	chaosSeed      uint64
	degradedPath   string
	degradedAfter  time.Duration
	requestTimeout time.Duration
}

// runWorker attaches this process to a coordinator as a cell-compute
// worker until the coordinator drains, the first SIGTERM/SIGINT drains
// this worker (finish and report the in-flight cell, then exit clean),
// or a second signal kills it hard.
func runWorker(cfg workerConfig) int {
	id := cfg.id
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	concurrency := cfg.concurrency
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	w := &dist.Worker{
		Coordinator:    cfg.coordinator,
		ID:             id,
		Concurrency:    concurrency,
		RequestTimeout: cfg.requestTimeout,
		DegradedPath:   cfg.degradedPath,
		DegradedAfter:  cfg.degradedAfter,
	}
	if cfg.verbose {
		w.Log = os.Stderr
	}
	if cfg.chaosSeed != 0 {
		plan := chaos.NewPlan(cfg.chaosSeed, chaos.DefaultProfile())
		in := chaos.NewInjector(plan)
		if cfg.verbose {
			in.Log = os.Stderr
		}
		w.Client = &http.Client{Transport: chaos.NewTransport(in, nil)}
		fmt.Fprintf(os.Stderr, "rcoal-experiments: %s\n", plan.Describe())
		defer func() { fmt.Fprintf(os.Stderr, "rcoal-experiments: %s\n", in.Summary()) }()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintf(os.Stderr, "rcoal-experiments: worker %s draining (finishing in-flight cells; signal again to kill)\n", id)
		w.Drain()
		<-sig
		fmt.Fprintf(os.Stderr, "rcoal-experiments: worker %s killed\n", id)
		cancel()
	}()

	fmt.Fprintf(os.Stderr, "rcoal-experiments: worker %s attaching to %s (%d concurrent cells)\n",
		id, cfg.coordinator, concurrency)
	if err := w.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "rcoal-experiments: worker: %v\n", err)
		return 1
	}
	if n := w.Parked(); n > 0 {
		fmt.Fprintf(os.Stderr, "rcoal-experiments: worker %s degraded: %d completion(s) parked in %s; rerun with the same -degraded-journal once the coordinator is back\n",
			id, n, cfg.degradedPath)
		return 0
	}
	fmt.Fprintf(os.Stderr, "rcoal-experiments: worker %s done (%d cells computed)\n", id, w.Completed())
	return 0
}
