// Command rcoal-experiments reproduces the RCoal paper's evaluation:
// every figure and table has a registered experiment that prints its
// data as an ASCII table or chart.
//
// Usage:
//
//	rcoal-experiments -list
//	rcoal-experiments -run fig6
//	rcoal-experiments -run all -samples 100 -seed 7
//	rcoal-experiments -run all -journal ckpt          # checkpoint finished cells
//	rcoal-experiments -run all -journal ckpt -resume  # skip journaled cells
//	rcoal-experiments -run all -accel                 # trace cache + prefix forking (byte-identical)
//	rcoal-experiments -run fig15 -hybrid              # analytical closed cells (bounded score drift)
//	rcoal-experiments -run all -cache cachedir        # reuse cells from any prior identical sweep
//	rcoal-experiments -worker http://host:8077        # compute cells for a rcoal-coordinator
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"rcoal/internal/atomicio"
	"rcoal/internal/chaos"
	"rcoal/internal/dist"
	"rcoal/internal/experiments"
	"rcoal/internal/gpusim"
	"rcoal/internal/gpusim/tracevis"
	"rcoal/internal/kernels"
	"rcoal/internal/obs"
	"rcoal/internal/runner"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiment IDs")
		run      = flag.String("run", "", "experiment ID to run, or \"all\"")
		samples  = flag.Int("samples", 100, "plaintext timing samples per configuration")
		lines    = flag.Int("lines", 32, "plaintext lines per sample (fig18 always uses 1024)")
		seed     = flag.Uint64("seed", 0x8C0A1, "master random seed")
		key      = flag.String("key", "RCoal eval key 1", "AES key (16/24/32 bytes)")
		csvDir   = flag.String("csv", "", "directory to write <id>.csv data files into (optional)")
		par      = flag.Int("parallel", 1, "experiments to run concurrently (they are independent and deterministic)")
		workers  = flag.Int("workers", 0, "cells evaluated concurrently inside each experiment; 0 = GOMAXPROCS, 1 = serial (results are identical at any setting)")
		prog     = flag.Bool("progress", false, "report per-experiment cell progress on stderr")
		jdir     = flag.String("journal", "", "directory for per-experiment checkpoint journals (<id>.journal); completed cells survive crashes")
		resume   = flag.Bool("resume", false, "resume from existing journals, skipping journaled cells (requires -journal)")
		cellTO   = flag.Duration("cell-timeout", 0, "per-cell time budget; 0 = unlimited")
		retries  = flag.Int("retries", 0, "extra attempts for cells failing with a retryable fault")
		traceOut = flag.String("trace-out", "", "write a Chrome/Perfetto trace of every simulated launch to this file (large; best with a single small experiment)")
		hb       = flag.Duration("heartbeat", 0, "period of the live telemetry line on stderr (cells done, rate, eta, worker utilization); 0 = off")
		maddr    = flag.String("metrics-addr", "", "serve live run telemetry over HTTP expvar at this address (e.g. localhost:6060/debug/vars)")
		accel    = flag.Bool("accel", false, "enable the exact accelerators: per-run trace caching plus copy-on-write prefix forking where applicable (results are byte-identical)")
		hybrid   = flag.Bool("hybrid", false, "replace analytically closed sweep cells with the Section V model's score instead of simulating the attack (scores may differ within the documented HybridScoreBound; performance columns stay simulated)")
		cdir     = flag.String("cache", "", "directory for the fingerprint-keyed results cache: cells computed by any prior sweep under identical result-determining options are restored instead of re-run")
		mechs    = flag.String("mechanisms", "", "comma-separated defense specs restricting mechanism-enumerating experiments (ext-defense-frontier), e.g. \"baseline,rss+rts:8,delay:64\"; empty = full registry")
		worker   = flag.String("worker", "", "run as a distributed worker for the rcoal-coordinator at this base URL (e.g. http://host:8077) instead of running experiments locally; -workers bounds concurrent cells")
		workerID = flag.String("worker-id", "", "worker name in the coordinator's ledger and status page; default host:pid")
		chaosSee = flag.Uint64("chaos-seed", 0, "worker mode: inject deterministic network faults on every coordinator request from this seed's schedule (internal/chaos; testing only); 0 = off")
		degrade  = flag.String("degraded-journal", "", "worker mode: local checkpoint journal for degraded standalone mode — completions undeliverable for -degraded-after park here instead of being lost and replay on the next run")
		degAfter = flag.Duration("degraded-after", 30*time.Second, "worker mode: delivery-failure window before a completion is parked (requires -degraded-journal)")
		reqTO    = flag.Duration("request-timeout", 30*time.Second, "worker mode: per-request HTTP timeout toward the coordinator")
		logJSON  = flag.Bool("log-json", false, "emit structured lifecycle events as JSON lines on stderr (heartbeats, lease lifecycle in worker mode)")
		logLevel = flag.String("log-level", "info", "structured log threshold: debug, info, warn, error (with -log-json)")
		flight   = flag.String("flight-out", "", "dump the in-memory flight recorder (last events at every level) to this file on watchdog trips, cell panics, or degraded-mode entry")
	)
	flag.Parse()

	if *resume && *jdir == "" {
		fmt.Fprintln(os.Stderr, "rcoal-experiments: -resume requires -journal")
		os.Exit(2)
	}

	if *worker != "" {
		os.Exit(runWorker(workerConfig{
			coordinator: *worker, id: *workerID, concurrency: *workers, verbose: *prog,
			chaosSeed: *chaosSee, degradedPath: *degrade, degradedAfter: *degAfter,
			requestTimeout: *reqTO,
			metricsAddr:    *maddr,
			logJSON:        *logJSON, logLevel: *logLevel, flightOut: *flight,
		}))
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "usage: rcoal-experiments -run <id>|all  (or -list)")
		os.Exit(2)
	}

	opts := experiments.DefaultOptions()
	opts.Samples = *samples
	opts.Lines = *lines
	opts.Seed = *seed
	opts.Key = []byte(*key)
	opts.Workers = *workers
	opts.CellTimeout = *cellTO
	opts.Retries = *retries
	opts.Hybrid = *hybrid
	if *mechs != "" {
		for _, spec := range strings.Split(*mechs, ",") {
			opts.Mechanisms = append(opts.Mechanisms, strings.TrimSpace(spec))
		}
	}
	if *accel {
		// One cache for the whole invocation: experiments share the key
		// and plaintext streams, so cross-experiment hits are real.
		opts.TraceCache = kernels.NewTraceCache()
		opts.ForkPrefix = true
	}

	var exporter *tracevis.Exporter
	if *traceOut != "" {
		exporter = tracevis.New()
		opts.Trace = exporter
	}
	// Local-mode observability: an optional flight recorder dumped on
	// watchdog trips and cell panics, a structured logger teeing into
	// it, and structured heartbeats when both -log-json and -heartbeat
	// are set.
	var recorder *obs.FlightRecorder
	if *flight != "" {
		recorder = obs.NewFlightRecorder(obs.DefaultFlightCapacity)
	}
	var logger *obs.Logger
	if *logJSON || recorder != nil {
		logDst := io.Writer(os.Stderr)
		if !*logJSON {
			logDst = io.Discard
		}
		logger = obs.NewLogger(logDst, obs.LogConfig{
			JSON: true, Level: obs.ParseLevel(*logLevel), Recorder: recorder,
		}).With("role", "local")
	}
	if *hb > 0 || *maddr != "" {
		tel := runner.NewTelemetry()
		opts.Telemetry = tel
		if *hb > 0 {
			if *logJSON {
				stop := tel.HeartbeatWith(*hb, func(s runner.TelemetryStats) {
					logger.Info("telemetry",
						"cells_done", s.CellsDone, "cells_total", s.TotalCells,
						"cells_failed", s.CellsFailed, "cache_hits", s.CacheHits,
						"cells_per_sec", s.CellsPerSec, "eta_sec", s.ETA.Seconds(),
						"utilization", s.Utilization)
				})
				defer stop()
			} else {
				stop := tel.Heartbeat(os.Stderr, *hb)
				defer stop()
			}
		}
		if *maddr != "" {
			expvar.Publish("rcoal_telemetry", expvar.Func(func() any { return tel.Stats() }))
			http.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) {
				p := obs.NewProm()
				p.Telemetry("rcoal", tel.Stats())
				rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				p.WriteTo(rw)
			})
			go func() {
				if err := http.ListenAndServe(*maddr, nil); err != nil {
					fmt.Fprintf(os.Stderr, "rcoal-experiments: metrics endpoint: %v\n", err)
				}
			}()
		}
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}

	type outcome struct {
		report  string
		elapsed float64
		err     error
	}
	results := make([]outcome, len(ids))
	sem := make(chan struct{}, max(1, *par))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			o := opts
			if *prog {
				o.Progress = func(done, total int) {
					fmt.Fprintf(os.Stderr, "%s: %d/%d cells\n", id, done, total)
					logger.Debug("progress", "experiment", id, "done", done, "total", total)
				}
			}
			if *jdir != "" {
				j, jerr := experiments.OpenJournal(filepath.Join(*jdir, id+".journal"), id, o, *resume)
				if jerr != nil {
					results[i] = outcome{err: jerr}
					return
				}
				defer j.Close()
				if *resume && j.Len() > 0 {
					fmt.Fprintf(os.Stderr, "%s: resuming with %d journaled cells (%d discarded)\n",
						id, j.Len(), j.Discarded)
				}
				o.Journal = j
			}
			if *cdir != "" {
				c, cerr := experiments.OpenCache(*cdir, id, o)
				if cerr != nil {
					results[i] = outcome{err: cerr}
					return
				}
				defer c.Close()
				o.Cache = c
			}
			res, err := experiments.Run(id, o)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			out := res.Render()
			if *csvDir != "" {
				if c, ok := res.(experiments.CSVer); ok {
					path := filepath.Join(*csvDir, id+".csv")
					if werr := atomicio.WriteFile(path, []byte(c.CSV()), 0o644); werr != nil {
						results[i] = outcome{err: werr}
						return
					}
					out += fmt.Sprintf("(data written to %s)\n", path)
				}
			}
			results[i] = outcome{report: out, elapsed: time.Since(start).Seconds()}
		}(i, id)
	}
	wg.Wait()
	if exporter != nil {
		if err := exporter.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "rcoal-experiments: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s (load at ui.perfetto.dev)\n",
			exporter.Len(), *traceOut)
	}
	for i, id := range ids {
		if results[i].err != nil {
			err := results[i].err
			fmt.Fprintf(os.Stderr, "rcoal-experiments: %s: %v\n", id, err)
			logger.Error("experiment failed", "experiment", id, "error", err.Error())
			if recorder != nil {
				// Classify the failure so the flight dump says why it was
				// taken; the dump path is referenced next to the error so
				// the diagnostic snapshot and the event ring travel
				// together.
				reason := "experiment failure"
				var pe *runner.PanicError
				switch {
				case errors.Is(err, gpusim.ErrNoProgress):
					reason = "watchdog: no forward progress"
				case errors.Is(err, gpusim.ErrMaxCycles):
					reason = "watchdog: cycle budget exhausted"
				case errors.As(err, &pe):
					reason = "cell panic"
				}
				if derr := recorder.Dump(*flight, reason, ""); derr != nil {
					fmt.Fprintf(os.Stderr, "rcoal-experiments: flight dump: %v\n", derr)
				} else {
					fmt.Fprintf(os.Stderr, "rcoal-experiments: flight recorder dumped to %s (%s)\n", *flight, reason)
				}
			}
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, results[i].elapsed, results[i].report)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// workerConfig bundles the worker-mode flags.
type workerConfig struct {
	coordinator    string
	id             string
	concurrency    int
	verbose        bool
	chaosSeed      uint64
	degradedPath   string
	degradedAfter  time.Duration
	requestTimeout time.Duration
	metricsAddr    string
	logJSON        bool
	logLevel       string
	flightOut      string
}

// runWorker attaches this process to a coordinator as a cell-compute
// worker until the coordinator drains, the first SIGTERM/SIGINT drains
// this worker (finish and report the in-flight cell, then exit clean),
// or a second signal kills it hard.
func runWorker(cfg workerConfig) int {
	id := cfg.id
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	concurrency := cfg.concurrency
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	var recorder *obs.FlightRecorder
	if cfg.flightOut != "" {
		recorder = obs.NewFlightRecorder(obs.DefaultFlightCapacity)
	}
	var logger *obs.Logger
	if cfg.logJSON || recorder != nil {
		logDst := io.Writer(os.Stderr)
		if !cfg.logJSON {
			logDst = io.Discard
		}
		logger = obs.NewLogger(logDst, obs.LogConfig{
			JSON: true, Level: obs.ParseLevel(cfg.logLevel), Recorder: recorder,
		}).With("role", "worker", "worker", id)
	}
	w := &dist.Worker{
		Coordinator:    cfg.coordinator,
		ID:             id,
		Concurrency:    concurrency,
		RequestTimeout: cfg.requestTimeout,
		DegradedPath:   cfg.degradedPath,
		DegradedAfter:  cfg.degradedAfter,
		Logger:         logger,
	}
	if cfg.verbose {
		w.Log = os.Stderr
	}
	var injector *chaos.Injector
	if cfg.chaosSeed != 0 {
		plan := chaos.NewPlan(cfg.chaosSeed, chaos.DefaultProfile())
		in := chaos.NewInjector(plan)
		injector = in
		if cfg.verbose {
			in.Log = os.Stderr
		}
		// Every injected fault becomes a trace mark on this worker's next
		// completion and a structured warning, so faults are visible in
		// the merged fleet trace and the event log, not just the counters.
		in.OnFault = func(endpoint string, n uint64, f chaos.Fault, partitioned bool) {
			w.ObserveFault(endpoint, n, f.Kind.String(), partitioned)
			logger.Warn("chaos fault injected",
				"endpoint", endpoint, "n", n, "kind", f.Kind.String(), "partitioned", partitioned)
		}
		w.Client = &http.Client{Transport: chaos.NewTransport(in, nil)}
		fmt.Fprintf(os.Stderr, "rcoal-experiments: %s\n", plan.Describe())
		defer func() { fmt.Fprintf(os.Stderr, "rcoal-experiments: %s\n", in.Summary()) }()
	}
	if cfg.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) {
			st := w.Stats()
			p := obs.NewProm()
			p.Gauge("rcoal_worker_cells_completed", "Cells this worker delivered (accepted or not).", float64(st.Completed))
			p.Counter("rcoal_worker_completions_accepted_total", "Completions the coordinator accepted.", float64(st.Accepted))
			p.Counter("rcoal_worker_completions_rejected_total", "Duplicate/stale completions (benign).", float64(st.Rejected))
			p.Counter("rcoal_worker_completions_parked_total", "Completions checkpointed in degraded mode.", float64(st.Parked))
			p.Counter("rcoal_worker_renewals_lost_total", "Leases the coordinator declined to renew.", float64(st.RenewalsLost))
			p.Counter("rcoal_worker_chaos_faults_total", "Chaos faults observed by this worker.", float64(st.FaultsSeen))
			if injector != nil {
				p.GaugeSeries("rcoal_worker_chaos_injected", "Injected faults by kind.", func(sample func(v float64, labels ...obs.Label)) {
					counts := injector.Counters()
					kinds := make([]string, 0, len(counts))
					for k := range counts {
						kinds = append(kinds, k)
					}
					sort.Strings(kinds)
					for _, k := range kinds {
						sample(float64(counts[k]), obs.Label{Name: "kind", Value: k})
					}
				})
			}
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			p.WriteTo(rw)
		})
		go func() {
			if err := http.ListenAndServe(cfg.metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "rcoal-experiments: worker metrics endpoint: %v\n", err)
			}
		}()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintf(os.Stderr, "rcoal-experiments: worker %s draining (finishing in-flight cells; signal again to kill)\n", id)
		w.Drain()
		<-sig
		fmt.Fprintf(os.Stderr, "rcoal-experiments: worker %s killed\n", id)
		cancel()
	}()

	fmt.Fprintf(os.Stderr, "rcoal-experiments: worker %s attaching to %s (%d concurrent cells)\n",
		id, cfg.coordinator, concurrency)
	logger.Info("worker attaching", "coordinator", cfg.coordinator, "concurrency", concurrency)
	dumpFlight := func(reason string) {
		if recorder == nil {
			return
		}
		if err := recorder.Dump(cfg.flightOut, reason, ""); err != nil {
			fmt.Fprintf(os.Stderr, "rcoal-experiments: flight dump: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "rcoal-experiments: flight recorder dumped to %s (%s)\n", cfg.flightOut, reason)
		}
	}
	if err := w.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "rcoal-experiments: worker: %v\n", err)
		logger.Error("worker failed", "error", err.Error())
		dumpFlight("worker failure")
		return 1
	}
	if n := w.Parked(); n > 0 {
		fmt.Fprintf(os.Stderr, "rcoal-experiments: worker %s degraded: %d completion(s) parked in %s; rerun with the same -degraded-journal once the coordinator is back\n",
			id, n, cfg.degradedPath)
		dumpFlight("degraded mode")
		return 0
	}
	fmt.Fprintf(os.Stderr, "rcoal-experiments: worker %s done (%d cells computed)\n", id, w.Completed())
	logger.Info("worker done", "cells", w.Completed())
	return 0
}
