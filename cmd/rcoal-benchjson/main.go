// Command rcoal-benchjson converts `go test -bench` text output into a
// machine-readable JSON report, optionally joined against a baseline
// run so before/after speedups live next to the raw numbers.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . > bench.txt
//	rcoal-benchjson -out BENCH_gpusim.json -baseline old_bench.txt bench.txt
//
// Input files (or stdin when none are given) are raw benchmark logs;
// every line of the form
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   10 allocs/op   11 cycles/s
//
// becomes one report entry. The CPU-count suffix is stripped so runs
// from different machines join by name. Unknown units (custom
// b.ReportMetric values) are preserved under "metrics".
//
// With -gpu-metrics the report additionally embeds simulator metrics
// snapshots for the two Figure 6 configurations (baseline GPU with
// coalescing enabled and disabled), so BENCH_gpusim.json records the
// coalesced-transactions-per-instruction histograms alongside the
// timing numbers:
//
//	go test -run '^$' -bench . -benchmem . > bench.txt
//	rcoal-benchjson -gpu-metrics -out BENCH_gpusim.json bench.txt
//
// -join-variant joins before/after pairs measured in the SAME run: for
// every benchmark X with a sibling named X<suffix>, the sibling becomes
// X's baseline. That is how the accelerator benchmarks publish their
// speedup without needing a log from an older binary:
//
//	rcoal-benchjson -join-variant Vanilla bench.txt
//
// -min-speedup turns joined speedups into a CI gate:
//
//	rcoal-benchjson -join-variant Vanilla \
//	    -min-speedup SelectiveMechanismSweep:2.0 bench.txt
//
// writes the report, then exits nonzero if the named benchmark's
// speedup is below the required ratio.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"rcoal"
	"rcoal/internal/atomicio"
	"rcoal/internal/gpusim"
	"rcoal/internal/metrics"
)

// Benchmark is one parsed benchmark result, with optional baseline
// numbers joined by name.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op (>1 is
	// faster); AllocRatio is current allocs/op divided by baseline
	// (<1 is leaner).
	Speedup    float64 `json:"speedup,omitempty"`
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Tool       string             `json:"tool"`
	Baseline   string             `json:"baseline,omitempty"`
	Benchmarks []*Benchmark       `json:"benchmarks"`
	GPUMetrics []*GPUMetricsEntry `json:"gpu_metrics,omitempty"`
}

// GPUMetricsEntry is one simulated launch's metrics snapshot, keyed by
// the paper configuration it reproduces.
type GPUMetricsEntry struct {
	// Config identifies the configuration ("fig6a_coalescing_on",
	// "fig6b_coalescing_off").
	Config string `json:"config"`
	// Lines and Seed pin the launch so the snapshot is reproducible.
	Lines int    `json:"lines"`
	Seed  uint64 `json:"seed"`
	// Snapshot is the full metrics dump; mcu/tx_per_instr is the
	// coalesced-accesses-per-load histogram Figure 6 turns on.
	Snapshot *metrics.Snapshot `json:"snapshot"`
}

func main() {
	out := flag.String("out", "-", "output path, - for stdout")
	baseline := flag.String("baseline", "", "optional baseline bench log to join before/after numbers")
	gpuMetrics := flag.Bool("gpu-metrics", false, "embed metrics snapshots of the Fig. 6 launches (baseline GPU, coalescing on/off)")
	joinVariant := flag.String("join-variant", "", "within-run join: every benchmark X with a sibling X<suffix> in the same input gets the sibling as its baseline (e.g. Vanilla)")
	minSpeedup := flag.String("min-speedup", "", "comma-separated name:ratio assertions checked after joining; the report is still written, but the exit status is nonzero if any named benchmark's speedup is below its ratio")
	flag.Parse()

	var cur []*Benchmark
	if flag.NArg() == 0 {
		var err error
		if cur, err = parse(os.Stdin); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		bs, err := parseFile(path)
		if err != nil {
			fatal(err)
		}
		cur = append(cur, bs...)
	}
	if len(cur) == 0 && !*gpuMetrics {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	rep := &Report{Tool: "rcoal-benchjson", Benchmarks: cur}
	if *gpuMetrics {
		entries, err := collectGPUMetrics()
		if err != nil {
			fatal(err)
		}
		rep.GPUMetrics = entries
	}
	if *baseline != "" {
		base, err := parseFile(*baseline)
		if err != nil {
			fatal(err)
		}
		join(cur, base)
		rep.Baseline = *baseline
	}
	if *joinVariant != "" {
		joinVariants(cur, *joinVariant)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := atomicio.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	if *minSpeedup != "" {
		if err := checkMinSpeedups(rep.Benchmarks, *minSpeedup); err != nil {
			fatal(err)
		}
	}
}

func parseFile(path string) ([]*Benchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	bs, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(bs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return bs, nil
}

func parse(r io.Reader) ([]*Benchmark, error) {
	var out []*Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := &Benchmark{Name: stripCPUSuffix(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", b.Name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// stripCPUSuffix drops the trailing -N GOMAXPROCS marker so results
// from machines with different core counts join by name.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func join(cur, base []*Benchmark) {
	byName := make(map[string]*Benchmark, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	for _, c := range cur {
		if b, ok := byName[c.Name]; ok {
			joinOne(c, b)
		}
	}
}

// joinVariants is the within-run join: X<suffix> becomes X's baseline.
// Variant entries keep their own row, so the report shows both raw
// timings next to the derived speedup.
func joinVariants(cur []*Benchmark, suffix string) {
	byName := make(map[string]*Benchmark, len(cur))
	for _, b := range cur {
		byName[b.Name] = b
	}
	for _, c := range cur {
		if strings.HasSuffix(c.Name, suffix) {
			continue
		}
		if b, ok := byName[c.Name+suffix]; ok {
			joinOne(c, b)
		}
	}
}

func joinOne(c, b *Benchmark) {
	c.BaselineNsPerOp = b.NsPerOp
	c.BaselineAllocsPerOp = b.AllocsPerOp
	if c.NsPerOp > 0 {
		c.Speedup = round2(b.NsPerOp / c.NsPerOp)
	}
	if b.AllocsPerOp > 0 {
		c.AllocRatio = round2(c.AllocsPerOp / b.AllocsPerOp)
	}
}

// checkMinSpeedups enforces "name:ratio" assertions against the joined
// report. Names match with or without the "Benchmark" prefix.
func checkMinSpeedups(bs []*Benchmark, spec string) error {
	byName := make(map[string]*Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	for _, part := range strings.Split(spec, ",") {
		name, ratioStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return fmt.Errorf("min-speedup: %q is not name:ratio", part)
		}
		ratio, err := strconv.ParseFloat(ratioStr, 64)
		if err != nil {
			return fmt.Errorf("min-speedup: bad ratio in %q: %v", part, err)
		}
		b, found := byName[name]
		if !found {
			b, found = byName["Benchmark"+name]
		}
		if !found {
			return fmt.Errorf("min-speedup: benchmark %q not in report", name)
		}
		if b.Speedup == 0 {
			return fmt.Errorf("min-speedup: %q has no joined baseline (missing -baseline/-join-variant match?)", name)
		}
		if b.Speedup < ratio {
			return fmt.Errorf("min-speedup: %s is %.2fx, below required %.2fx", b.Name, b.Speedup, ratio)
		}
	}
	return nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// collectGPUMetrics runs the two Figure 6 launches (baseline GPU with
// coalescing enabled and disabled) with a metrics bundle installed and
// returns their snapshots. Fixed seed and line count keep the output
// byte-for-byte reproducible.
func collectGPUMetrics() ([]*GPUMetricsEntry, error) {
	const lines, seed = 32, 1
	var out []*GPUMetricsEntry
	for _, c := range []struct {
		name    string
		defense rcoal.Mechanism
	}{
		{"fig6a_coalescing_on", rcoal.Baseline()},
		{"fig6b_coalescing_off", rcoal.NoCoal()},
	} {
		cfg := rcoal.DefaultGPUConfig()
		cfg.Defense = c.defense
		cfg.Metrics = gpusim.NewMetrics()
		srv, err := rcoal.NewServer(cfg, []byte("RCoal eval key 1"))
		if err != nil {
			return nil, fmt.Errorf("gpu metrics %s: %w", c.name, err)
		}
		sample, err := srv.Encrypt(rcoal.RandomPlaintext(seed, lines), seed)
		if err != nil {
			return nil, fmt.Errorf("gpu metrics %s: %w", c.name, err)
		}
		out = append(out, &GPUMetricsEntry{
			Config: c.name, Lines: lines, Seed: seed, Snapshot: sample.Metrics})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rcoal-benchjson:", err)
	os.Exit(1)
}
