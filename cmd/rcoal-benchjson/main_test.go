package main

import (
	"strings"
	"testing"
)

const sampleLog = `
goos: linux
goarch: amd64
pkg: rcoal
BenchmarkSimulatorEncrypt32Lines-8   	     100	   1302810 ns/op	  160374 B/op	     255 allocs/op
BenchmarkGPUCycleThroughput-8        	     100	   1233655 ns/op	   9301727 cycles/s	   62307 B/op	      39 allocs/op
BenchmarkNoMem                       	    5000	       123.4 ns/op
PASS
`

func TestParse(t *testing.T) {
	bs, err := parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(bs))
	}
	enc := bs[0]
	if enc.Name != "BenchmarkSimulatorEncrypt32Lines" {
		t.Errorf("cpu suffix not stripped: %q", enc.Name)
	}
	if enc.NsPerOp != 1302810 || enc.BytesPerOp != 160374 || enc.AllocsPerOp != 255 {
		t.Errorf("bad std units: %+v", enc)
	}
	if got := bs[1].Metrics["cycles/s"]; got != 9301727 {
		t.Errorf("custom metric cycles/s = %v, want 9301727", got)
	}
	if bs[2].NsPerOp != 123.4 || bs[2].Iterations != 5000 {
		t.Errorf("bad no-benchmem line: %+v", bs[2])
	}
}

func TestJoin(t *testing.T) {
	cur, err := parse(strings.NewReader(
		"BenchmarkX-8  10  500 ns/op  100 B/op  5 allocs/op\nBenchmarkOnlyNew  10  1 ns/op  0 B/op  0 allocs/op"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := parse(strings.NewReader("BenchmarkX-4  10  2000 ns/op  400 B/op  50 allocs/op"))
	if err != nil {
		t.Fatal(err)
	}
	join(cur, base)
	x := cur[0]
	if x.Speedup != 4 {
		t.Errorf("speedup = %v, want 4", x.Speedup)
	}
	if x.AllocRatio != 0.1 {
		t.Errorf("alloc ratio = %v, want 0.1", x.AllocRatio)
	}
	if x.BaselineNsPerOp != 2000 {
		t.Errorf("baseline ns/op = %v, want 2000", x.BaselineNsPerOp)
	}
	if cur[1].Speedup != 0 || cur[1].BaselineNsPerOp != 0 {
		t.Errorf("benchmark without baseline must stay unjoined: %+v", cur[1])
	}
}

func TestCollectGPUMetrics(t *testing.T) {
	entries, err := collectGPUMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2 (coalescing on/off)", len(entries))
	}
	byName := map[string]*GPUMetricsEntry{}
	for _, e := range entries {
		if e.Snapshot == nil {
			t.Fatalf("%s: nil snapshot", e.Config)
		}
		byName[e.Config] = e
	}
	on, off := byName["fig6a_coalescing_on"], byName["fig6b_coalescing_off"]
	if on == nil || off == nil {
		t.Fatalf("missing configs: %v", entries)
	}
	// The coalesced-tx histogram is the point of the embed: with
	// coalescing disabled every thread's access is its own transaction,
	// so the per-instruction mean must be strictly larger.
	hOn, okOn := on.Snapshot.Histograms["mcu/tx_per_instr"]
	hOff, okOff := off.Snapshot.Histograms["mcu/tx_per_instr"]
	if !okOn || !okOff {
		t.Fatal("snapshots missing mcu/tx_per_instr histogram")
	}
	if hOn.Count == 0 || hOff.Count == 0 {
		t.Fatalf("empty histograms: on=%d off=%d observations", hOn.Count, hOff.Count)
	}
	if hOff.Mean <= hOn.Mean {
		t.Errorf("coalescing-off mean tx/instr %.2f not above coalescing-on %.2f", hOff.Mean, hOn.Mean)
	}
}
