// Command rcoal-obscheck validates observability artifacts produced
// by a sweep: Prometheus text exposition scraped from /metrics, and
// the merged fleet trace written by rcoal-coordinator -trace-out. It
// exists so smoke scripts and CI can assert the observability plane's
// output formats without external tooling.
//
// Usage:
//
//	rcoal-obscheck -prom metrics.txt
//	rcoal-obscheck -trace fleet.json -require "lease,cell,chaos_fault"
//	rcoal-obscheck -trace fleet.json -one-trace-id
//
// -require takes comma-separated event-name prefixes; each must match
// at least one event in the trace ("lease" matches "lease k0_v1").
// -one-trace-id additionally demands that every duration/instant
// event carries the same trace_id argument as the file's otherData.
// Any failed check prints a diagnostic and exits 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rcoal/internal/gpusim/tracevis"
	"rcoal/internal/obs"
)

func main() {
	var (
		prom    = flag.String("prom", "", "Prometheus text exposition file to lint")
		trace   = flag.String("trace", "", "Chrome/Perfetto trace JSON file to validate")
		require = flag.String("require", "", "comma-separated event-name prefixes the trace must contain (with -trace)")
		oneID   = flag.Bool("one-trace-id", false, "require every timeline event to carry the file's otherData trace_id (with -trace)")
	)
	flag.Parse()

	if *prom == "" && *trace == "" {
		fmt.Fprintln(os.Stderr, "usage: rcoal-obscheck -prom <file> | -trace <file> [-require names] [-one-trace-id]")
		os.Exit(2)
	}
	exit := 0
	if *prom != "" {
		if err := checkProm(*prom); err != nil {
			fmt.Fprintf(os.Stderr, "rcoal-obscheck: %s: %v\n", *prom, err)
			exit = 1
		} else {
			fmt.Printf("%s: valid Prometheus text exposition\n", *prom)
		}
	}
	if *trace != "" {
		if err := checkTrace(*trace, *require, *oneID); err != nil {
			fmt.Fprintf(os.Stderr, "rcoal-obscheck: %s: %v\n", *trace, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func checkProm(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return obs.LintProm(data)
}

func checkTrace(path, require string, oneID bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := tracevis.Validate(raw); err != nil {
		return err
	}
	var f tracevis.File
	if err := json.Unmarshal(raw, &f); err != nil {
		return err
	}
	traceID, _ := f.OtherData["trace_id"].(string)
	if oneID {
		if traceID == "" {
			return fmt.Errorf("otherData carries no trace_id")
		}
		for _, ev := range f.TraceEvents {
			if ev.Ph != "X" && ev.Ph != "i" && ev.Ph != "B" {
				continue
			}
			if got, _ := ev.Args["trace_id"].(string); got != traceID {
				return fmt.Errorf("event %q (ph %s) carries trace_id %q, want %q", ev.Name, ev.Ph, got, traceID)
			}
		}
	}
	if require != "" {
		names := make([]string, 0, len(f.TraceEvents))
		for _, ev := range f.TraceEvents {
			names = append(names, ev.Name)
		}
		for _, want := range strings.Split(require, ",") {
			want = strings.TrimSpace(want)
			if want == "" {
				continue
			}
			found := false
			for _, name := range names {
				if strings.HasPrefix(name, want) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("no event named %q* in trace (%d events)", want, len(f.TraceEvents))
			}
		}
	}
	fmt.Printf("%s: valid trace, %d events, trace_id %s\n", path, len(f.TraceEvents), traceID)
	return nil
}
