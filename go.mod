module rcoal

go 1.22
